// Engine front-end strategy selection, the CombineSlot accumulator path,
// and the library loaders/exporters.

#include "ebsp/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/codec.h"
#include "ebsp/library.h"
#include "ebsp/transport.h"
#include "kvstore/partitioned_store.h"

namespace ripple::ebsp {
namespace {

RawJob minimalJob() {
  RawJob job;
  job.referenceTable = "ref";
  job.compute.compute = [](RawComputeContext&) { return false; };
  return job;
}

TEST(EngineFront, AutoPicksNoSyncFromProperties) {
  auto store = kv::PartitionedStore::create(2);
  Engine engine(store);

  RawJob plain = minimalJob();
  EXPECT_FALSE(engine.wouldRunNoSync(plain));

  RawJob incremental = minimalJob();
  incremental.properties.incremental = true;
  EXPECT_TRUE(engine.wouldRunNoSync(incremental));

  RawJob noCollect = minimalJob();
  noCollect.properties.oneMsg = true;
  noCollect.properties.noContinue = true;
  noCollect.properties.noSsOrder = true;
  EXPECT_TRUE(engine.wouldRunNoSync(noCollect));

  // Aggregators force synchronized execution under kAuto.
  RawJob withAgg = minimalJob();
  withAgg.properties.incremental = true;
  withAgg.aggregators.emplace("a", countAggregator());
  EXPECT_FALSE(engine.wouldRunNoSync(withAgg));
}

TEST(EngineFront, ModeOverridesProperties) {
  auto store = kv::PartitionedStore::create(2);
  EngineOptions syncOptions;
  syncOptions.mode = ExecutionMode::kSynchronized;
  Engine syncEngine(store, syncOptions);
  RawJob incremental = minimalJob();
  incremental.properties.incremental = true;
  EXPECT_FALSE(syncEngine.wouldRunNoSync(incremental));

  EngineOptions asyncOptions;
  asyncOptions.mode = ExecutionMode::kNoSync;
  Engine asyncEngine(store, asyncOptions);
  RawJob plain = minimalJob();
  EXPECT_TRUE(asyncEngine.wouldRunNoSync(plain));
}

TEST(EngineFront, ForcedNoSyncRejectsUnsuitableJob) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions tableOptions;
  tableOptions.parts = 2;
  store->createTable("ref", std::move(tableOptions));
  EngineOptions options;
  options.mode = ExecutionMode::kNoSync;
  Engine engine(store, options);
  RawJob plain = minimalJob();  // No qualifying properties.
  EXPECT_THROW(engine.run(plain), std::invalid_argument);
}

TEST(EngineFront, OnBarrierForcesSynchronizedUnderAuto) {
  // An onBarrier hook can only ever fire on the synchronized strategy, so
  // setting it must pull even no-sync-eligible jobs back to synchronized
  // instead of being silently ignored.
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions tableOptions;
  tableOptions.parts = 2;
  store->createTable("ref", std::move(tableOptions));

  RawJob job = minimalJob();
  job.properties.incremental = true;
  auto loader = std::make_shared<VectorLoader>();
  loader->message("a", "m");
  job.loaders = {loader};

  EngineOptions options;
  std::atomic<int> barriers{0};
  options.onBarrier = [&](int) { barriers.fetch_add(1); };
  Engine engine(store, options);
  EXPECT_FALSE(engine.wouldRunNoSync(job));
  engine.run(job);
  EXPECT_GE(barriers.load(), 1);  // The hook actually fired.
}

TEST(EngineFront, OnBarrierWithForcedNoSyncThrows) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions tableOptions;
  tableOptions.parts = 2;
  store->createTable("ref", std::move(tableOptions));

  RawJob job = minimalJob();
  job.properties.incremental = true;

  EngineOptions options;
  options.mode = ExecutionMode::kNoSync;
  options.onBarrier = [](int) {};
  Engine engine(store, options);
  EXPECT_THROW(engine.run(job), std::invalid_argument);
}

TEST(EngineFront, ForcedSyncRunsIncrementalJob) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions tableOptions;
  tableOptions.parts = 2;
  store->createTable("ref", std::move(tableOptions));
  EngineOptions options;
  options.mode = ExecutionMode::kSynchronized;
  Engine engine(store, options);

  std::atomic<int> invocations{0};
  RawJob job = minimalJob();
  job.properties.incremental = true;
  job.compute.compute = [&](RawComputeContext&) {
    invocations.fetch_add(1);
    return false;
  };
  auto loader = std::make_shared<VectorLoader>();
  loader->message("a", "m");
  job.loaders = {loader};
  const JobResult r = engine.run(job);
  EXPECT_EQ(r.steps, 1);  // Synchronized: steps are counted.
  EXPECT_EQ(invocations.load(), 1);
}

// ---------------------------------------------------------------------
// CombineSlot / CombinerOps.
// ---------------------------------------------------------------------

CombinerOps pairwiseSum() {
  return CombinerOps([](BytesView, BytesView a, BytesView b) {
    return encodeToBytes(decodeFromBytes<std::int64_t>(a) +
                         decodeFromBytes<std::int64_t>(b));
  });
}

CombinerOps accumulatingSum() {
  CombinerOps ops;
  ops.begin = [](BytesView, BytesView first) -> RawCompute::CombineAcc {
    return std::make_shared<std::int64_t>(
        decodeFromBytes<std::int64_t>(first));
  };
  ops.add = [](const RawCompute::CombineAcc& acc, BytesView, BytesView next) {
    *std::static_pointer_cast<std::int64_t>(acc) +=
        decodeFromBytes<std::int64_t>(next);
  };
  ops.finish = [](const RawCompute::CombineAcc& acc, BytesView) {
    return encodeToBytes(*std::static_pointer_cast<std::int64_t>(acc));
  };
  return ops;
}

class CombineSlotTest : public ::testing::TestWithParam<bool> {
 protected:
  CombinerOps ops() const {
    return GetParam() ? accumulatingSum() : pairwiseSum();
  }
};

TEST_P(CombineSlotTest, SingleMessagePassesThroughUntouched) {
  CombineSlot slot;
  EXPECT_TRUE(slot.empty());
  slot.addMessage(ops(), "k", encodeToBytes<std::int64_t>(7));
  EXPECT_FALSE(slot.empty());
  EXPECT_EQ(decodeFromBytes<std::int64_t>(slot.take(ops(), "k")), 7);
  EXPECT_TRUE(slot.empty());
}

TEST_P(CombineSlotTest, ManyMessagesFold) {
  CombineSlot slot;
  for (std::int64_t i = 1; i <= 100; ++i) {
    slot.addMessage(ops(), "k", encodeToBytes(i));
  }
  EXPECT_EQ(decodeFromBytes<std::int64_t>(slot.take(ops(), "k")), 5050);
}

TEST_P(CombineSlotTest, EmptyPayloadIsAValidFirstMessage) {
  auto opsConcat = CombinerOps([](BytesView, BytesView a, BytesView b) {
    return Bytes(a) + Bytes(b);
  });
  CombineSlot slot;
  slot.addMessage(opsConcat, "k", "");
  EXPECT_FALSE(slot.empty());
  slot.addMessage(opsConcat, "k", "x");
  EXPECT_EQ(slot.take(opsConcat, "k"), "x");
}

INSTANTIATE_TEST_SUITE_P(Modes, CombineSlotTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Accumulating" : "Pairwise";
                         });

TEST(CombinerOps, FromComputePrefersWhatIsSet) {
  RawCompute compute;
  EXPECT_FALSE(static_cast<bool>(CombinerOps::fromCompute(compute)));
  compute.combineMessages = [](BytesView, BytesView a, BytesView) {
    return Bytes(a);
  };
  CombinerOps pairwiseOnly = CombinerOps::fromCompute(compute);
  EXPECT_TRUE(static_cast<bool>(pairwiseOnly));
  EXPECT_FALSE(pairwiseOnly.accumulating());
  EXPECT_TRUE(compute.hasCombiner());
}

// ---------------------------------------------------------------------
// Library loaders / exporters.
// ---------------------------------------------------------------------

struct RecordingLoaderContext : LoaderContext {
  void emitMessage(BytesView k, BytesView p) override {
    messages.emplace_back(Bytes(k), Bytes(p));
  }
  void enableComponent(BytesView k) override { enables.emplace_back(k); }
  void putState(int tab, BytesView k, BytesView s) override {
    states.push_back({tab, Bytes(k), Bytes(s)});
  }
  void aggregateValue(const std::string& n, BytesView v) override {
    aggregates.emplace_back(n, Bytes(v));
  }
  struct StateEntry {
    int tab;
    Bytes key;
    Bytes state;
  };
  std::vector<std::pair<Bytes, Bytes>> messages;
  std::vector<Bytes> enables;
  std::vector<StateEntry> states;
  std::vector<std::pair<std::string, Bytes>> aggregates;
};

TEST(Library, VectorLoaderEmitsEverything) {
  VectorLoader loader;
  loader.message("m1", "p1").enable("e1").state(2, "s1", "v1").aggregate(
      "agg", "x");
  RecordingLoaderContext ctx;
  loader.load(ctx);
  ASSERT_EQ(ctx.messages.size(), 1u);
  EXPECT_EQ(ctx.messages[0].first, "m1");
  ASSERT_EQ(ctx.enables.size(), 1u);
  ASSERT_EQ(ctx.states.size(), 1u);
  EXPECT_EQ(ctx.states[0].tab, 2);
  ASSERT_EQ(ctx.aggregates.size(), 1u);
  EXPECT_EQ(ctx.aggregates[0].first, "agg");
}

TEST(Library, FunctionLoaderDelegates) {
  FunctionLoader loader([](LoaderContext& ctx) { ctx.emitMessage("k", "v"); });
  RecordingLoaderContext ctx;
  loader.load(ctx);
  EXPECT_EQ(ctx.messages.size(), 1u);
}

TEST(Library, CollectingExporterIsThreadSafeAndTakes) {
  CollectingExporter exporter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&exporter, t] {
      for (int i = 0; i < 100; ++i) {
        exporter.consume("k" + std::to_string(t), "v");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(exporter.count(), 400u);
  EXPECT_EQ(exporter.take().size(), 400u);
  EXPECT_EQ(exporter.count(), 0u);
}

TEST(Library, FunctionAndNullExporters) {
  int calls = 0;
  FunctionExporter fn([&calls](BytesView, BytesView) { ++calls; });
  fn.consume("k", "v");
  EXPECT_EQ(calls, 1);

  NullExporter null;
  null.consume("k", "v");  // Must not crash; drops silently.
  EXPECT_FALSE(null.wantsSerial());
}

}  // namespace
}  // namespace ripple::ebsp
