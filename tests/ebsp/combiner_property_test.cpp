// Combiner correctness property (the tentpole's sender-side combining):
// for seeded random jobs, running with a declared combiner must produce
// exactly the state a combiner-free run folds by hand — the combiner is
// an optimization the platform "may apply at arbitrary times and
// places", never a semantic change.  Covered: pairwise and accumulator
// combiner APIs, sum and min folds, empty-message and single-part and
// singleton-destination edge cases, the legacy and pooled sync dispatch,
// and the no-sync engine's per-invocation sender-side combining.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/random.h"
#include "ebsp/engine.h"
#include "ebsp/library.h"
#include "ebsp/sync_engine.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"

namespace ripple::ebsp {
namespace {

enum class Fold { kSum, kMin };
enum class CombinerMode { kNone, kPairwise, kAccumulator };

std::int64_t foldOp(Fold fold, std::int64_t a, std::int64_t b) {
  return fold == Fold::kSum ? a + b : std::min(a, b);
}

/// Sender component keys live above this; destinations below it.
constexpr int kSenderBase = 1000;

struct Config {
  std::uint64_t seed = 1;
  int senders = 40;
  int dests = 5;
  int msgsPerSender = 4;
  std::uint32_t parts = 4;
  Fold fold = Fold::kSum;
  CombinerMode mode = CombinerMode::kNone;
  int threads = 0;
  bool uniqueDests = false;  // Each sender targets its own destination.
};

void attachCombiner(RawJob& job, const Config& cfg) {
  switch (cfg.mode) {
    case CombinerMode::kNone:
      break;
    case CombinerMode::kPairwise:
      job.compute.combineMessages = [fold = cfg.fold](BytesView, BytesView a,
                                                      BytesView b) {
        return encodeToBytes(foldOp(fold, decodeFromBytes<std::int64_t>(a),
                                    decodeFromBytes<std::int64_t>(b)));
      };
      break;
    case CombinerMode::kAccumulator:
      job.compute.combineBegin = [](BytesView,
                                    BytesView first) -> RawCompute::CombineAcc {
        return std::make_shared<std::int64_t>(
            decodeFromBytes<std::int64_t>(first));
      };
      job.compute.combineAdd = [fold = cfg.fold](
                                   const RawCompute::CombineAcc& acc,
                                   BytesView, BytesView next) {
        auto* v = static_cast<std::int64_t*>(acc.get());
        *v = foldOp(fold, *v, decodeFromBytes<std::int64_t>(next));
      };
      job.compute.combineFinish = [](const RawCompute::CombineAcc& acc,
                                     BytesView) {
        return encodeToBytes(*static_cast<std::int64_t*>(acc.get()));
      };
      break;
  }
}

/// Deterministic message list for one sender under (seed, id).
std::vector<std::pair<int, std::int64_t>> senderMessages(const Config& cfg,
                                                         int id) {
  std::vector<std::pair<int, std::int64_t>> out;
  Rng rng(cfg.seed * 7919 + static_cast<std::uint64_t>(id));
  for (int m = 0; m < cfg.msgsPerSender; ++m) {
    const int dest =
        cfg.uniqueDests
            ? id - kSenderBase
            : static_cast<int>(rng.nextBelow(
                  static_cast<std::uint64_t>(cfg.dests)));
    out.emplace_back(dest,
                     static_cast<std::int64_t>(rng.nextBelow(1'000'000)));
  }
  return out;
}

/// Two-step job: enabled senders emit their seeded message lists at step
/// 1; destinations fold whatever arrives (combined or not) with the SAME
/// op at step 2 and write the result to state.
RawJob makeRandomJob(const Config& cfg) {
  RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.compute.compute = [cfg](RawComputeContext& ctx) {
    if (ctx.stepNum() == 1) {
      const int id = decodeFromBytes<int>(ctx.key());
      for (const auto& [dest, value] : senderMessages(cfg, id)) {
        ctx.outputMessage(encodeToBytes(dest), encodeToBytes(value));
      }
      return false;
    }
    std::optional<std::int64_t> acc;
    for (const Bytes& m : ctx.inputMessages()) {
      const auto v = decodeFromBytes<std::int64_t>(m);
      acc = acc ? foldOp(cfg.fold, *acc, v) : v;
    }
    if (acc) {
      ctx.writeState(0, encodeToBytes(*acc));
    }
    return false;
  };
  attachCombiner(job, cfg);
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < cfg.senders; ++i) {
    loader->enable(encodeToBytes(kSenderBase + i));
  }
  job.loaders = {loader};
  return job;
}

struct Outcome {
  std::vector<std::pair<kv::Key, kv::Value>> state;  // Sorted snapshot.
  EngineMetrics metrics;
};

Outcome runSyncJob(const Config& cfg) {
  auto store = kv::PartitionedStore::create(cfg.parts);
  kv::TableOptions options;
  options.parts = cfg.parts;
  store->createTable("ref", std::move(options));
  RawJob job = makeRandomJob(cfg);
  SyncEngineOptions eopts;
  eopts.threads = cfg.threads;
  SyncEngine engine(store, eopts);
  Outcome out;
  out.metrics = engine.run(job).metrics;
  out.state = kv::readAll(*store->lookupTable("ref"));
  std::sort(out.state.begin(), out.state.end());
  return out;
}

TEST(CombinerProperty, CombinedEqualsUncombinedFold) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    for (const Fold fold : {Fold::kSum, Fold::kMin}) {
      for (const int threads : {0, 4}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " fold=" + (fold == Fold::kSum ? "sum" : "min") +
                     " threads=" + std::to_string(threads));
        Config cfg;
        cfg.seed = seed;
        cfg.fold = fold;
        cfg.threads = threads;
        const Outcome baseline = runSyncJob(cfg);
        ASSERT_FALSE(baseline.state.empty());
        EXPECT_EQ(baseline.metrics.combineIn, 0u);
        EXPECT_EQ(baseline.metrics.combineOut, 0u);

        for (const CombinerMode mode :
             {CombinerMode::kPairwise, CombinerMode::kAccumulator}) {
          cfg.mode = mode;
          const Outcome combined = runSyncJob(cfg);
          EXPECT_EQ(combined.state, baseline.state);
          // 160 messages funnel into 5 destinations: combining must
          // actually collapse traffic, not just pass it through.
          EXPECT_GT(combined.metrics.combineIn,
                    combined.metrics.combineOut);
          EXPECT_GT(combined.metrics.combineOut, 0u);
          EXPECT_LT(combined.metrics.messagesDelivered,
                    baseline.metrics.messagesDelivered);
        }
      }
    }
  }
}

TEST(CombinerProperty, EmptyMessageJobIsANoOp) {
  Config cfg;
  cfg.msgsPerSender = 0;
  const Outcome baseline = runSyncJob(cfg);
  cfg.mode = CombinerMode::kPairwise;
  const Outcome combined = runSyncJob(cfg);
  EXPECT_EQ(combined.state, baseline.state);
  EXPECT_TRUE(combined.state.empty());
  EXPECT_EQ(combined.metrics.combineIn, 0u);
  EXPECT_EQ(combined.metrics.combineOut, 0u);
}

TEST(CombinerProperty, SinglePartStillCombines) {
  Config cfg;
  cfg.parts = 1;
  cfg.threads = 4;  // Pool wider than the part count must be harmless.
  const Outcome baseline = runSyncJob(cfg);
  cfg.mode = CombinerMode::kAccumulator;
  const Outcome combined = runSyncJob(cfg);
  EXPECT_EQ(combined.state, baseline.state);
  EXPECT_GT(combined.metrics.combineIn, combined.metrics.combineOut);
  EXPECT_GT(combined.metrics.combineOut, 0u);
}

TEST(CombinerProperty, SingletonDestinationsPassThrough) {
  // One message per destination: the combiner must never fire pairwise,
  // and every record passes through the combining stage unchanged.
  Config cfg;
  cfg.uniqueDests = true;
  cfg.msgsPerSender = 1;
  const Outcome baseline = runSyncJob(cfg);
  cfg.mode = CombinerMode::kPairwise;
  const Outcome combined = runSyncJob(cfg);
  EXPECT_EQ(combined.state, baseline.state);
  EXPECT_EQ(combined.metrics.combineIn, combined.metrics.combineOut);
  EXPECT_EQ(combined.metrics.combineIn,
            static_cast<std::uint64_t>(cfg.senders));
  EXPECT_EQ(combined.metrics.combinerCalls, 0u);
}

// ---------------------------------------------------------------------
// No-sync engine: combining happens per invocation on the sender side
// (duplicate destination keys in one invocation's output fold before the
// weight split).  The receiver accumulates into state read-modify-write,
// so the commutative integer sum makes combined and uncombined runs end
// in exactly the same state.
// ---------------------------------------------------------------------

Outcome runAsyncJob(const Config& cfg) {
  auto store = kv::PartitionedStore::create(cfg.parts);
  kv::TableOptions options;
  options.parts = cfg.parts;
  store->createTable("ref", std::move(options));

  RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.properties.incremental = true;
  job.properties.noContinue = true;
  job.compute.compute = [cfg](RawComputeContext& ctx) {
    const int id = decodeFromBytes<int>(ctx.key());
    if (id >= kSenderBase) {
      for (const auto& [dest, value] : senderMessages(cfg, id)) {
        ctx.outputMessage(encodeToBytes(dest), encodeToBytes(value));
      }
      return false;
    }
    std::int64_t acc = 0;
    if (const auto prev = ctx.readState(0)) {
      acc = decodeFromBytes<std::int64_t>(*prev);
    }
    for (const Bytes& m : ctx.inputMessages()) {
      acc += decodeFromBytes<std::int64_t>(m);
    }
    ctx.writeState(0, encodeToBytes(acc));
    return false;
  };
  attachCombiner(job, cfg);
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < cfg.senders; ++i) {
    loader->enable(encodeToBytes(kSenderBase + i));
  }
  job.loaders = {loader};

  EngineOptions eopts;
  eopts.mode = ExecutionMode::kNoSync;
  eopts.threads = cfg.threads;
  Engine engine(store, eopts);
  Outcome out;
  out.metrics = engine.run(job).metrics;
  out.state = kv::readAll(*store->lookupTable("ref"));
  std::sort(out.state.begin(), out.state.end());
  return out;
}

TEST(CombinerProperty, NoSyncSenderSideCombining) {
  for (const std::uint64_t seed : {1, 2}) {
    for (const int threads : {0, 4}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      Config cfg;
      cfg.seed = seed;
      cfg.threads = threads;
      const Outcome baseline = runAsyncJob(cfg);
      ASSERT_FALSE(baseline.state.empty());
      for (const CombinerMode mode :
           {CombinerMode::kPairwise, CombinerMode::kAccumulator}) {
        cfg.mode = mode;
        const Outcome combined = runAsyncJob(cfg);
        EXPECT_EQ(combined.state, baseline.state);
        // 4 messages over 5 destinations per invocation: some senders
        // must draw duplicates at these seeds.
        EXPECT_GT(combined.metrics.combineIn, combined.metrics.combineOut);
        EXPECT_GT(combined.metrics.combineOut, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace ripple::ebsp
