// No-sync engine semantics: property gating, Huang termination, ordering
// guarantees, work stealing, and equivalence with synchronized execution.

#include "ebsp/async_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "common/codec.h"
#include "ebsp/library.h"
#include "ebsp/sync_engine.h"
#include "kvstore/partitioned_store.h"
#include "mq/queue.h"

namespace ripple::ebsp {
namespace {

kv::KVStorePtr newStore(std::uint32_t containers = 4) {
  return kv::PartitionedStore::create(containers);
}

kv::TablePtr makeRef(kv::KVStore& store, std::uint32_t parts = 4) {
  kv::TableOptions options;
  options.parts = parts;
  return store.createTable("ref", std::move(options));
}

JobProperties noSyncProps() {
  JobProperties p;
  p.oneMsg = true;
  p.noContinue = true;
  p.noSsOrder = true;
  return p;
}

RawJob baseJob(std::function<bool(RawComputeContext&)> compute) {
  RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.properties = noSyncProps();
  job.compute.compute = std::move(compute);
  return job;
}

JobResult run(kv::KVStorePtr store, RawJob& job,
              AsyncEngineOptions options = {}) {
  if (!options.queuing) {
    options.queuing = mq::makeMemQueuing(store);
  }
  AsyncEngine engine(std::move(store), std::move(options));
  return engine.run(job);
}

TEST(AsyncEngine, RejectsJobsThatNeedSync) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  job.properties = JobProperties{};  // No qualifying properties.
  EXPECT_THROW(run(store, job), std::invalid_argument);
}

TEST(AsyncEngine, RejectsAggregators) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  job.aggregators.emplace("a", countAggregator());  // Breaks no-agg.
  EXPECT_THROW(run(store, job), std::invalid_argument);
}

TEST(AsyncEngine, RejectsAborter) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  job.aborter = [](const AggregateReader&, int) { return false; };
  EXPECT_THROW(run(store, job), std::invalid_argument);
}

TEST(AsyncEngine, EmptyInitialConditionTerminatesImmediately) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  const JobResult r = run(store, job);
  EXPECT_EQ(r.metrics.computeInvocations, 0u);
  EXPECT_EQ(r.steps, 0);
}

TEST(AsyncEngine, ChainTerminatesViaHuang) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    invocations.fetch_add(1);
    const auto hop = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    if (hop < 500) {
      ctx.outputMessage(encodeToBytes(hop + 1), encodeToBytes(hop + 1));
    }
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message(encodeToBytes<std::int64_t>(0),
                  encodeToBytes<std::int64_t>(0));
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(invocations.load(), 501);
  EXPECT_EQ(r.metrics.messagesSent, 500u);
}

TEST(AsyncEngine, FanOutFanInProcessesEverything) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<std::int64_t> leafSum{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    const auto depth = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    if (depth < 10) {
      ctx.outputMessage(Bytes(ctx.key()) + "L", encodeToBytes(depth + 1));
      ctx.outputMessage(Bytes(ctx.key()) + "R", encodeToBytes(depth + 1));
    } else {
      leafSum.fetch_add(1);
    }
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message("root", encodeToBytes<std::int64_t>(0));
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(leafSum.load(), 1024);
}

TEST(AsyncEngine, PerChannelFifoHolds) {
  // An incremental job: one sender component streams sequenced messages
  // to one receiver; the receiver must observe them in order.
  auto store = newStore();
  makeRef(*store, 4);
  std::mutex mu;
  std::vector<std::int64_t> received;
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    if (ctx.key() == "sender") {
      for (std::int64_t i = 0; i < 200; ++i) {
        ctx.outputMessage("receiver", encodeToBytes(i));
      }
    } else {
      std::lock_guard<std::mutex> lock(mu);
      for (const Bytes& m : ctx.inputMessages()) {
        received.push_back(decodeFromBytes<std::int64_t>(m));
      }
    }
    return false;
  });
  job.properties = JobProperties{};
  job.properties.incremental = true;  // The other no-sync path.
  job.properties.noContinue = true;
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("sender");
  job.loaders = {loader};
  run(store, job);
  ASSERT_EQ(received.size(), 200u);
  for (std::int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

TEST(AsyncEngine, StateWritesVisibleAfterRun) {
  auto store = newStore();
  auto ref = makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    ctx.writeState(0, ctx.inputMessages()[0]);
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 50; ++i) {
    loader->message(encodeToBytes(i), encodeToBytes(i * 2));
  }
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(ref->size(), 50u);
  EXPECT_EQ(decodeFromBytes<int>(*ref->get(encodeToBytes(7))), 14);
}

TEST(AsyncEngine, WorkStealingHappensUnderSkew) {
  auto store = newStore(4);
  // Constant partitioner: all components land in part 0.
  kv::TableOptions options;
  options.parts = 4;
  options.partitioner = std::make_shared<const Partitioner>(
      4, [](BytesView) -> std::uint64_t { return 0; });
  store->createTable("ref", std::move(options));

  RawJob job = baseJob([](RawComputeContext& ctx) {
    const auto hop = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    volatile double x = 1.0;
    for (int i = 0; i < 10000; ++i) {
      x = x * 1.0000001;
    }
    if (hop < 30) {
      ctx.outputMessage(Bytes(ctx.key()) + "x", encodeToBytes(hop + 1));
    }
    return false;
  });
  job.properties.rareState = true;  // Enables run-anywhere.
  auto loader = std::make_shared<VectorLoader>();
  for (int c = 0; c < 16; ++c) {
    loader->message("chain" + std::to_string(c),
                    encodeToBytes<std::int64_t>(0));
  }
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(r.metrics.computeInvocations, 16u * 31u);
  EXPECT_GT(r.metrics.stolenMessages, 0u);
}

TEST(AsyncEngine, StealingDisabledWithoutRareState) {
  auto store = newStore(4);
  kv::TableOptions options;
  options.parts = 4;
  options.partitioner = std::make_shared<const Partitioner>(
      4, [](BytesView) -> std::uint64_t { return 0; });
  store->createTable("ref", std::move(options));
  RawJob job = baseJob([](RawComputeContext& ctx) {
    const auto hop = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    if (hop < 10) {
      ctx.outputMessage(Bytes(ctx.key()) + "x", encodeToBytes(hop + 1));
    }
    return false;
  });
  // rareState stays false: no-collect holds but run-anywhere does not.
  auto loader = std::make_shared<VectorLoader>();
  for (int c = 0; c < 8; ++c) {
    loader->message("chain" + std::to_string(c),
                    encodeToBytes<std::int64_t>(0));
  }
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(r.metrics.stolenMessages, 0u);
}

TEST(AsyncEngine, CreateStateRoutesAndMerges) {
  auto store = newStore();
  auto ref = makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    ctx.createState(0, "target", encodeToBytes<std::int64_t>(1));
    return false;
  });
  job.compute.combineStates = [](BytesView, BytesView a, BytesView b) {
    return encodeToBytes(decodeFromBytes<std::int64_t>(a) +
                         decodeFromBytes<std::int64_t>(b));
  };
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 10; ++i) {
    loader->message(encodeToBytes(i), encodeToBytes(i));
  }
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(decodeFromBytes<std::int64_t>(*ref->get("target")), 10);
}

TEST(AsyncEngine, ComputeExceptionPropagates) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) -> bool {
    throw std::runtime_error("compute failed");
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message("a", "m");
  job.loaders = {loader};
  EXPECT_THROW(run(store, job), std::runtime_error);
}

TEST(AsyncEngine, ContinueSignalReinvokesUnderIncremental) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    (void)ctx;
    return invocations.fetch_add(1) < 4;  // Continue 4 times.
  });
  job.properties = JobProperties{};
  job.properties.incremental = true;
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(invocations.load(), 5);
}

TEST(AsyncEngine, TableBackedQueuingWorksToo) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    invocations.fetch_add(1);
    const auto hop = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    if (hop < 50) {
      ctx.outputMessage(encodeToBytes(hop + 1), encodeToBytes(hop + 1));
    }
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message(encodeToBytes<std::int64_t>(0),
                  encodeToBytes<std::int64_t>(0));
  job.loaders = {loader};
  AsyncEngineOptions options;
  options.queuing = mq::makeTableQueuing(store);
  run(store, job, options);
  EXPECT_EQ(invocations.load(), 51);
}

TEST(AsyncAndSync, ProduceIdenticalFinalState) {
  // A commutative accumulation job valid in both modes; final state must
  // agree between engines.
  auto makeJob = [](std::atomic<long>* sum) {
    RawJob job;
    job.referenceTable = "ref";
    job.stateTableNames = {"ref"};
    job.properties = noSyncProps();
    job.compute.compute = [sum](RawComputeContext& ctx) {
      const auto v = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
      sum->fetch_add(v);
      if (v > 1) {
        // Split v into two messages v/2 and v-v/2 to distinct children.
        ctx.outputMessage(Bytes(ctx.key()) + "a", encodeToBytes(v / 2));
        ctx.outputMessage(Bytes(ctx.key()) + "b", encodeToBytes(v - v / 2));
      }
      return false;
    };
    auto loader = std::make_shared<VectorLoader>();
    loader->message("root", encodeToBytes<std::int64_t>(64));
    job.loaders = {loader};
    return job;
  };

  std::atomic<long> asyncSum{0};
  {
    auto store = newStore();
    makeRef(*store);
    RawJob job = makeJob(&asyncSum);
    run(store, job);
  }
  std::atomic<long> syncSum{0};
  {
    auto store = newStore();
    makeRef(*store);
    RawJob job = makeJob(&syncSum);
    SyncEngine engine(store, {});
    engine.run(job);
  }
  EXPECT_EQ(asyncSum.load(), syncSum.load());
  EXPECT_GT(asyncSum.load(), 64);
}

}  // namespace
}  // namespace ripple::ebsp
