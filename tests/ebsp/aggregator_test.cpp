#include "ebsp/aggregator.h"

#include <gtest/gtest.h>

namespace ripple::ebsp {
namespace {

TEST(AggregatorLibrary, Sum) {
  auto agg = sumAggregator<double>();
  EXPECT_EQ(decodeFromBytes<double>(agg->identity()), 0.0);
  EXPECT_EQ(decodeFromBytes<double>(
                agg->combine(encodeToBytes(1.5), encodeToBytes(2.5))),
            4.0);
}

TEST(AggregatorLibrary, MinMax) {
  auto mn = minAggregator<int>(1000);
  auto mx = maxAggregator<int>(-1000);
  EXPECT_EQ(decodeFromBytes<int>(
                mn->combine(encodeToBytes(5), encodeToBytes(3))),
            3);
  EXPECT_EQ(decodeFromBytes<int>(
                mx->combine(encodeToBytes(5), encodeToBytes(3))),
            5);
  EXPECT_EQ(decodeFromBytes<int>(mn->identity()), 1000);
}

TEST(AggregatorLibrary, CountAndBools) {
  auto count = countAggregator();
  EXPECT_EQ(decodeFromBytes<std::uint64_t>(count->combine(
                encodeToBytes<std::uint64_t>(2), encodeToBytes<std::uint64_t>(3))),
            5u);
  auto land = boolAndAggregator();
  auto lor = boolOrAggregator();
  EXPECT_FALSE(decodeFromBytes<bool>(
      land->combine(encodeToBytes(true), encodeToBytes(false))));
  EXPECT_TRUE(decodeFromBytes<bool>(
      lor->combine(encodeToBytes(true), encodeToBytes(false))));
  EXPECT_TRUE(decodeFromBytes<bool>(land->identity()));
  EXPECT_FALSE(decodeFromBytes<bool>(lor->identity()));
}

class AggregatorSetTest : public ::testing::Test {
 protected:
  AggregatorSetTest() {
    techniques_.emplace("sum", sumAggregator<std::int64_t>());
    techniques_.emplace("min", minAggregator<std::int64_t>(1'000'000));
  }
  std::map<std::string, RawAggregatorPtr> techniques_;
};

TEST_F(AggregatorSetTest, PartialAggregationAndFinalize) {
  AggregatorSet set(&techniques_);
  set.add("sum", encodeToBytes<std::int64_t>(3));
  set.add("sum", encodeToBytes<std::int64_t>(4));
  set.add("min", encodeToBytes<std::int64_t>(9));
  set.add("min", encodeToBytes<std::int64_t>(2));

  const auto finals = set.finalize();
  EXPECT_EQ(decodeFromBytes<std::int64_t>(finals.at("sum")), 7);
  EXPECT_EQ(decodeFromBytes<std::int64_t>(finals.at("min")), 2);
}

TEST_F(AggregatorSetTest, UncontributedAggregatorsGetIdentity) {
  AggregatorSet set(&techniques_);
  const auto finals = set.finalize();
  EXPECT_EQ(decodeFromBytes<std::int64_t>(finals.at("sum")), 0);
  EXPECT_EQ(decodeFromBytes<std::int64_t>(finals.at("min")), 1'000'000);
}

TEST_F(AggregatorSetTest, MergeCombinesPerPartPartials) {
  // The engine aggregates partials per part then merges at the barrier
  // (paper §IV-A).
  AggregatorSet part0(&techniques_);
  AggregatorSet part1(&techniques_);
  part0.add("sum", encodeToBytes<std::int64_t>(10));
  part1.add("sum", encodeToBytes<std::int64_t>(5));
  part1.add("min", encodeToBytes<std::int64_t>(-3));
  part0.merge(part1);
  const auto finals = part0.finalize();
  EXPECT_EQ(decodeFromBytes<std::int64_t>(finals.at("sum")), 15);
  EXPECT_EQ(decodeFromBytes<std::int64_t>(finals.at("min")), -3);
}

TEST_F(AggregatorSetTest, UnknownNameThrows) {
  AggregatorSet set(&techniques_);
  EXPECT_THROW(set.add("nope", encodeToBytes<std::int64_t>(1)),
               std::invalid_argument);
}

TEST(AggregatorSet, NullTechniquesRejectsAdds) {
  AggregatorSet set(nullptr);
  EXPECT_THROW(set.add("x", "v"), std::invalid_argument);
  EXPECT_TRUE(set.finalize().empty());
}

TEST(AggregateReader, ReadsTypedValues) {
  std::map<std::string, Bytes> finals;
  finals["pi"] = encodeToBytes(3.14);
  AggregateReader reader(&finals);
  EXPECT_EQ(reader.get<double>("pi"), 3.14);
  EXPECT_EQ(reader.get<double>("tau"), std::nullopt);
  AggregateReader empty(nullptr);
  EXPECT_EQ(empty.raw("pi"), std::nullopt);
}

TEST(MakeAggregator, CustomTechnique) {
  // String concatenation with a custom merge (order-dependent combine is
  // discouraged, but the plumbing must honor the function).
  auto agg = makeAggregator<std::int64_t>(
      1, [](std::int64_t a, std::int64_t b) { return a * b; });
  EXPECT_EQ(decodeFromBytes<std::int64_t>(agg->combine(
                encodeToBytes<std::int64_t>(6), encodeToBytes<std::int64_t>(7))),
            42);
}

}  // namespace
}  // namespace ripple::ebsp
