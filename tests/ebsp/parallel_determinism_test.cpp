// Cross-thread-count determinism (the tentpole's sorted-collect
// contract): PageRank, SSSP, and SUMMA produce byte-identical state and
// identical round accounting whether the engine runs on 1, 2, or 8
// worker threads, on both execution strategies where eligible.  The sync
// engine merges per-(sender part, dest part) spill buffers in canonical
// (sender, sequence) order at the barrier, so every combiner fold and FP
// sum happens in the same order at any pool width; the no-sync SUMMA
// job multiplies batches in ascending k order regardless of arrival.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "ebsp/engine.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"
#include "matrix/summa.h"
#include "obs/report.h"

namespace ripple::ebsp {
namespace {

struct RunOutcome {
  std::vector<std::pair<kv::Key, kv::Value>> state;  // Sorted snapshot.
  std::uint64_t syncRounds = 0;
  std::uint64_t ioRounds = 0;
};

graph::Graph testGraph(std::uint32_t vertices, std::uint32_t edges,
                       std::uint64_t seed) {
  graph::PowerLawOptions options;
  options.vertices = vertices;
  options.edges = edges;
  options.seed = seed;
  return graph::generatePowerLaw(options);
}

// ---------------------------------------------------------------------
// PageRank — synchronized strategy; FP rank sums must not depend on the
// pool width.
// ---------------------------------------------------------------------

RunOutcome runPageRankAt(int threads, const graph::Graph& g) {
  auto store = kv::PartitionedStore::create(6);
  apps::loadPageRankGraph(*store, "pr_graph", g, 6);
  obs::Tracer tracer;
  EngineOptions eopts;
  eopts.threads = threads;
  eopts.tracer = &tracer;
  Engine engine(store, eopts);
  apps::PageRankOptions options;
  options.iterations = 5;
  apps::runPageRank(engine, options);

  RunOutcome out;
  out.state = kv::readAll(*store->lookupTable("pr_graph"));
  std::sort(out.state.begin(), out.state.end());
  const obs::RunReport report =
      obs::RunReport::capture("pr", nullptr, &tracer);
  out.syncRounds = report.syncRounds();
  out.ioRounds = report.ioRounds();
  return out;
}

TEST(ParallelDeterminism, PageRankByteIdenticalAcrossThreadCounts) {
  const graph::Graph g = testGraph(300, 1800, 21);
  const RunOutcome baseline = runPageRankAt(1, g);
  ASSERT_FALSE(baseline.state.empty());
  EXPECT_GT(baseline.syncRounds, 0u);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunOutcome run = runPageRankAt(threads, g);
    EXPECT_EQ(run.state, baseline.state);  // Byte-identical ranks.
    EXPECT_EQ(run.syncRounds, baseline.syncRounds);
    EXPECT_EQ(run.ioRounds, baseline.ioRounds);
  }
}

// ---------------------------------------------------------------------
// SSSP — synchronized strategy (the driver's jobs use aggregators);
// integer distances plus the round accounting must be exact.
// ---------------------------------------------------------------------

TEST(ParallelDeterminism, SsspIdenticalAcrossThreadCounts) {
  const graph::Graph g = testGraph(250, 1200, 4);

  auto run = [&](int threads) {
    auto store = kv::PartitionedStore::create(6);
    obs::Tracer tracer;
    EngineOptions eopts;
    eopts.threads = threads;
    eopts.tracer = &tracer;
    Engine engine(store, eopts);
    apps::SsspOptions options;
    options.parts = 6;
    apps::SsspDriver driver(engine, options);
    driver.loadGraph(g);
    driver.initialize();
    const obs::RunReport report =
        obs::RunReport::capture("sssp", nullptr, &tracer);
    return std::make_tuple(driver.distances(g.vertexCount()),
                           report.syncRounds(), report.ioRounds());
  };

  const auto [baseDist, baseSync, baseIo] = run(1);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto [dist, sync, io] = run(threads);
    EXPECT_EQ(dist, baseDist);
    EXPECT_EQ(sync, baseSync);
    EXPECT_EQ(io, baseIo);
  }
}

// ---------------------------------------------------------------------
// SUMMA — the workload eligible for BOTH strategies.  The C blocks must
// be bit-identical (tolerance 0.0) at every pool width: the compute
// multiplies batches in ascending k order whatever the arrival order.
// ---------------------------------------------------------------------

TEST(ParallelDeterminism, SummaBitIdenticalBothStrategies) {
  constexpr std::uint32_t kGrid = 3;
  constexpr std::size_t kBlock = 8;
  Rng rng(123);
  matrix::BlockMatrix a(kGrid, kBlock);
  matrix::BlockMatrix b(kGrid, kBlock);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const matrix::BlockMatrix expected =
      matrix::BlockMatrix::multiplyReference(a, b);

  auto run = [&](bool synchronized, int threads) {
    auto store = kv::PartitionedStore::create(kGrid * kGrid);
    obs::Tracer tracer;
    EngineOptions eopts;
    eopts.threads = threads;
    eopts.tracer = &tracer;
    Engine engine(store, eopts);
    matrix::SummaOptions options;
    options.synchronized = synchronized;
    options.parts = kGrid * kGrid;
    const matrix::SummaResult r = runSumma(engine, a, b, options);
    const obs::RunReport report =
        obs::RunReport::capture("summa", nullptr, &tracer);
    return std::make_tuple(r.c, report.syncRounds(), report.ioRounds());
  };

  for (const bool synchronized : {true, false}) {
    SCOPED_TRACE(synchronized ? "sync" : "no-sync");
    const auto [baseC, baseSync, baseIo] = run(synchronized, 1);
    EXPECT_TRUE(baseC.approxEqual(expected, 1e-9));
    for (const int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const auto [c, sync, io] = run(synchronized, threads);
      EXPECT_TRUE(c.approxEqual(baseC, 0.0));  // Bit-identical.
      EXPECT_EQ(sync, baseSync);
      EXPECT_EQ(io, baseIo);
    }
  }
}

}  // namespace
}  // namespace ripple::ebsp
