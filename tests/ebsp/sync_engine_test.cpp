// Synchronized engine semantics, driven through raw jobs for precise
// control over the machinery.

#include "ebsp/sync_engine.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "common/codec.h"
#include "ebsp/library.h"
#include "kvstore/local_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"

namespace ripple::ebsp {
namespace {

kv::KVStorePtr newStore() { return kv::PartitionedStore::create(4); }

kv::TablePtr makeRef(kv::KVStore& store, const std::string& name = "ref",
                     std::uint32_t parts = 4) {
  kv::TableOptions options;
  options.parts = parts;
  return store.createTable(name, std::move(options));
}

RawJob baseJob(std::function<bool(RawComputeContext&)> compute) {
  RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.compute.compute = std::move(compute);
  return job;
}

JobResult run(kv::KVStorePtr store, RawJob& job, SyncEngineOptions options = {}) {
  SyncEngine engine(std::move(store), std::move(options));
  return engine.run(job);
}

TEST(SyncEngine, NoInitialWorkMeansZeroSteps) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  const JobResult r = run(store, job);
  EXPECT_EQ(r.steps, 0);
  EXPECT_EQ(r.metrics.computeInvocations, 0u);
}

TEST(SyncEngine, MissingReferenceTableThrows) {
  auto store = newStore();
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  EXPECT_THROW(run(store, job), std::invalid_argument);
}

TEST(SyncEngine, MessagesAreDeliveredTheFollowingStep) {
  auto store = newStore();
  makeRef(*store);
  std::mutex mu;
  std::vector<std::pair<int, Bytes>> invocations;  // (step, key)
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(mu);
      invocations.emplace_back(ctx.stepNum(), Bytes(ctx.key()));
    }
    if (ctx.stepNum() == 1) {
      ctx.outputMessage("b", "hello");
    }
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message("a", "start");
  job.loaders = {loader};

  const JobResult r = run(store, job);
  EXPECT_EQ(r.steps, 2);
  ASSERT_EQ(invocations.size(), 2u);
  EXPECT_EQ(invocations[0], (std::pair<int, Bytes>{1, "a"}));
  EXPECT_EQ(invocations[1], (std::pair<int, Bytes>{2, "b"}));
}

TEST(SyncEngine, SelectiveEnablement) {
  // 100 components exist in state; only the messaged one is invoked.
  auto store = newStore();
  auto ref = makeRef(*store);
  for (int i = 0; i < 100; ++i) {
    ref->put(encodeToBytes(i), "state");
  }
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext&) {
    invocations.fetch_add(1);
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message(encodeToBytes(17), "poke");
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(invocations.load(), 1);
}

TEST(SyncEngine, ContinueSignalEnablesNextStep) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    invocations.fetch_add(1);
    EXPECT_TRUE(ctx.inputMessages().empty() || ctx.stepNum() == 1);
    return ctx.stepNum() < 5;  // Stay enabled for 5 steps.
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("self");
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(r.steps, 5);
  EXPECT_EQ(invocations.load(), 5);
}

TEST(SyncEngine, StatePersistsAcrossSteps) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    const auto prev = ctx.readState(0);
    const std::int64_t count =
        prev ? decodeFromBytes<std::int64_t>(*prev) + 1 : 1;
    ctx.writeState(0, encodeToBytes(count));
    return count < 4;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(r.steps, 4);
  auto final = store->lookupTable("ref")->get("c");
  EXPECT_EQ(decodeFromBytes<std::int64_t>(*final), 4);
}

TEST(SyncEngine, MultipleStateTables) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    ctx.writeState(0, "in-ref");
    ctx.writeState(1, "in-aux");
    EXPECT_EQ(ctx.readState(1), "in-aux");
    ctx.deleteState(0);
    EXPECT_EQ(ctx.readState(0), std::nullopt);
    EXPECT_THROW(ctx.readState(7), std::out_of_range);
    return false;
  });
  job.stateTableNames = {"ref", "aux"};
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("x");
  job.loaders = {loader};
  run(store, job);
  // aux was created consistently with ref and holds the write.
  EXPECT_EQ(store->lookupTable("aux")->get("x"), "in-aux");
  EXPECT_EQ(store->lookupTable("ref")->get("x"), std::nullopt);
}

TEST(SyncEngine, AggregatorVisibleNextStep) {
  auto store = newStore();
  makeRef(*store);
  std::mutex mu;
  std::vector<std::optional<std::int64_t>> seen;
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    {
      std::lock_guard<std::mutex> lock(mu);
      auto raw = ctx.aggregateResult("total");
      seen.push_back(raw ? std::optional<std::int64_t>(
                               decodeFromBytes<std::int64_t>(*raw))
                         : std::nullopt);
    }
    ctx.aggregateValue("total",
                       encodeToBytes<std::int64_t>(ctx.stepNum() * 10));
    return ctx.stepNum() < 3;
  });
  job.aggregators.emplace("total", sumAggregator<std::int64_t>());
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  const JobResult r = run(store, job);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 0);   // Initial condition: identity (no loader input).
  EXPECT_EQ(seen[1], 10);  // Step 1's aggregation.
  EXPECT_EQ(seen[2], 20);
  EXPECT_EQ(r.aggregate<std::int64_t>("total"), 30);
}

TEST(SyncEngine, LoaderAggregatorInputReadableAtStepOne) {
  auto store = newStore();
  makeRef(*store);
  std::optional<std::int64_t> atStep1;
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    atStep1 = decodeFromBytes<std::int64_t>(*ctx.aggregateResult("seed"));
    return false;
  });
  job.aggregators.emplace("seed", sumAggregator<std::int64_t>());
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  loader->aggregate("seed", encodeToBytes<std::int64_t>(99));
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(atStep1, 99);
}

TEST(SyncEngine, AborterStopsExecution) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) {
    return true;  // Would run forever.
  });
  job.aborter = [](const AggregateReader&, int step) { return step >= 3; };
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.steps, 3);
}

TEST(SyncEngine, CombinerCollapsesMessagesAcrossParts) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> deliveredLists{0};
  std::atomic<std::int64_t> deliveredSum{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    if (ctx.stepNum() == 1) {
      // 20 senders each send 1 to "sink".
      ctx.outputMessage("sink", encodeToBytes<std::int64_t>(1));
      return false;
    }
    deliveredLists.fetch_add(
        static_cast<int>(ctx.inputMessages().size()));
    for (const Bytes& m : ctx.inputMessages()) {
      deliveredSum.fetch_add(decodeFromBytes<std::int64_t>(m));
    }
    return false;
  });
  job.compute.combineMessages = [](BytesView, BytesView a, BytesView b) {
    return encodeToBytes(decodeFromBytes<std::int64_t>(a) +
                         decodeFromBytes<std::int64_t>(b));
  };
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 20; ++i) {
    loader->enable(encodeToBytes(i));
  }
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(deliveredSum.load(), 20);
  EXPECT_EQ(deliveredLists.load(), 1);  // Fully combined into one message.
  EXPECT_GT(r.metrics.combinerCalls, 0u);
}

TEST(SyncEngine, WithoutCombinerMessagesAreCollected) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> listSize{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    if (ctx.stepNum() == 1) {
      ctx.outputMessage("sink", Bytes(ctx.key()));
      return false;
    }
    listSize.store(static_cast<int>(ctx.inputMessages().size()));
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 7; ++i) {
    loader->enable(encodeToBytes(i));
  }
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(listSize.load(), 7);
}

TEST(SyncEngine, CreateStateAppliesAtBarrierWithConflictMerge) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    if (ctx.stepNum() == 1) {
      // Every component creates the same new component's state.
      ctx.createState(0, "shared-new", encodeToBytes<std::int64_t>(1));
    }
    return false;
  });
  job.compute.combineStates = [](BytesView, BytesView a, BytesView b) {
    return encodeToBytes(decodeFromBytes<std::int64_t>(a) +
                         decodeFromBytes<std::int64_t>(b));
  };
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 5; ++i) {
    loader->enable(encodeToBytes(i));
  }
  job.loaders = {loader};
  run(store, job);
  const auto v = store->lookupTable("ref")->get("shared-new");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(decodeFromBytes<std::int64_t>(*v), 5);
}

TEST(SyncEngine, CreateStateConflictWithoutMergerThrows) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    ctx.createState(0, "shared", "s");
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable(encodeToBytes(1));
  loader->enable(encodeToBytes(2));
  job.loaders = {loader};
  EXPECT_ANY_THROW(run(store, job));
}

TEST(SyncEngine, BroadcastDataReadable) {
  auto store = newStore();
  makeRef(*store);
  kv::TableOptions ubiOptions;
  ubiOptions.ubiquitous = true;
  auto ubi = store->createTable("config", std::move(ubiOptions));
  ubi->put("factor", encodeToBytes(2.5));

  std::atomic<bool> sawIt{false};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    const auto v = ctx.broadcastDatum("factor");
    if (v && decodeFromBytes<double>(*v) == 2.5) {
      sawIt.store(true);
    }
    EXPECT_EQ(ctx.broadcastDatum("missing"), std::nullopt);
    return false;
  });
  job.broadcastTable = "config";
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  run(store, job);
  EXPECT_TRUE(sawIt.load());
}

TEST(SyncEngine, DirectOutputStreamsToExporter) {
  auto store = newStore();
  makeRef(*store);
  auto collector = std::make_shared<CollectingExporter>();
  RawJob job = baseJob([](RawComputeContext& ctx) {
    ctx.directOutput(Bytes(ctx.key()), "out");
    return false;
  });
  job.directOutputter = collector;
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 9; ++i) {
    loader->enable(encodeToBytes(i));
  }
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(collector->count(), 9u);
  EXPECT_EQ(r.metrics.directOutputs, 9u);
}

TEST(SyncEngine, WritersExportFinalStates) {
  auto store = newStore();
  makeRef(*store);
  auto collector = std::make_shared<CollectingExporter>();
  RawJob job = baseJob([](RawComputeContext& ctx) {
    ctx.writeState(0, "final");
    return false;
  });
  job.writers[0] = collector;
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 6; ++i) {
    loader->enable(encodeToBytes(i));
  }
  job.loaders = {loader};
  run(store, job);
  EXPECT_EQ(collector->count(), 6u);
}

TEST(SyncEngine, NeedsOrderInvokesInKeyOrderPerPart) {
  auto store = newStore();
  makeRef(*store, "ref", 2);
  std::mutex mu;
  std::map<std::uint32_t, std::vector<Bytes>> perPartKeys;
  auto ref = store->lookupTable("ref");
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    perPartKeys[ref->partOf(ctx.key())].emplace_back(ctx.key());
    return false;
  });
  job.properties.needsOrder = true;
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 99; i >= 0; --i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    loader->enable(buf);
  }
  job.loaders = {loader};
  run(store, job);
  std::size_t total = 0;
  for (const auto& [part, keys] : perPartKeys) {
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    total += keys.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(SyncEngine, NoContinueViolationIsDetected) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return true; });
  job.properties.noContinue = true;
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  EXPECT_ANY_THROW(run(store, job));
}

TEST(SyncEngine, MaxStepsGuardsNonTermination) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return true; });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("c");
  job.loaders = {loader};
  SyncEngineOptions options;
  options.maxSteps = 10;
  EXPECT_THROW(run(store, job, options), std::runtime_error);
}

TEST(SyncEngine, NoCollectFastPathDeliversSingleMessages) {
  auto store = newStore();
  makeRef(*store);
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    invocations.fetch_add(1);
    EXPECT_LE(ctx.inputMessages().size(), 1u);
    const std::int64_t hop =
        decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    if (hop < 20) {
      ctx.outputMessage(encodeToBytes(hop + 1), encodeToBytes(hop + 1));
    }
    return false;
  });
  job.properties.oneMsg = true;
  job.properties.noContinue = true;
  auto loader = std::make_shared<VectorLoader>();
  loader->message(encodeToBytes<std::int64_t>(0),
                  encodeToBytes<std::int64_t>(0));
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(invocations.load(), 21);
  EXPECT_EQ(r.steps, 21);
}

TEST(SyncEngine, OnStepHookReportsInvocations) {
  auto store = newStore();
  makeRef(*store);
  std::vector<std::uint64_t> perStep;
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    if (ctx.stepNum() == 1) {
      ctx.outputMessage("x", "m");
      ctx.outputMessage("y", "m");
    }
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("a");
  job.loaders = {loader};
  SyncEngineOptions options;
  options.onStep = [&](int, std::uint64_t invocations) {
    perStep.push_back(invocations);
  };
  run(store, job, options);
  ASSERT_EQ(perStep.size(), 2u);
  EXPECT_EQ(perStep[0], 1u);
  EXPECT_EQ(perStep[1], 2u);
}

TEST(SyncEngine, RunsOnLocalStoreToo) {
  auto store = kv::LocalStore::create();
  kv::TableOptions options;
  options.parts = 3;
  store->createTable("ref", std::move(options));
  std::atomic<int> invocations{0};
  RawJob job = baseJob([&](RawComputeContext& ctx) {
    invocations.fetch_add(1);
    if (ctx.stepNum() < 3) {
      ctx.outputMessage(Bytes(ctx.key()) + "x", "m");
    }
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->message("a", "m");
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(r.steps, 3);
  EXPECT_EQ(invocations.load(), 3);
}

TEST(SyncEngine, MetricsAccounting) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext& ctx) {
    if (ctx.stepNum() == 1) {
      ctx.outputMessage("b", "m1");
      ctx.outputMessage("c", "m2");
    }
    ctx.writeState(0, "s");
    return false;
  });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("a");
  job.loaders = {loader};
  const JobResult r = run(store, job);
  EXPECT_EQ(r.metrics.steps, 2u);
  EXPECT_EQ(r.metrics.computeInvocations, 3u);
  EXPECT_EQ(r.metrics.messagesSent, 2u);
  EXPECT_EQ(r.metrics.messagesDelivered, 2u);
  EXPECT_EQ(r.metrics.barriers, 2u);
  EXPECT_EQ(r.metrics.stateWrites, 3u);
  EXPECT_GT(r.metrics.spillsWritten, 0u);
  EXPECT_GT(r.virtualMakespan, 0.0);
  EXPECT_GT(r.elapsedSeconds, 0.0);
}

TEST(SyncEngine, EngineTablesAreCleanedUp) {
  auto store = newStore();
  makeRef(*store);
  RawJob job = baseJob([](RawComputeContext&) { return false; });
  auto loader = std::make_shared<VectorLoader>();
  loader->enable("a");
  job.loaders = {loader};
  run(store, job);
  // Only the reference table remains.
  EXPECT_NE(store->lookupTable("ref"), nullptr);
  // Transport/collection tables carry the __ebsp prefix; probe a few ids.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(store->lookupTable("__ebsp_tr_" + std::to_string(i)), nullptr);
    EXPECT_EQ(store->lookupTable("__ebsp_col_" + std::to_string(i)), nullptr);
  }
}

}  // namespace
}  // namespace ripple::ebsp
