// Cross-BACKEND differential leg of the store-SPI conformance story
// (DESIGN.md §10): the choice of store backend must be behaviorally
// invisible to applications.  PageRank, SSSP, and SUMMA produce
// byte-identical state snapshots whether the engine runs over the
// partitioned store or the shard store, on both execution strategies
// where eligible, at pool widths 1 and 8.  This holds because every
// backend honors the canonical drain-order contract: per-part drains are
// ascending byte-lexicographic, so compute order — and therefore every
// combiner fold and FP sum — does not depend on backend internals.
//
// Also here: backend selection plumbing (RIPPLE_STORE / parseStoreBackend
// / EngineOptions::storeBackend through makeEngineStore) and the
// engine-level seal that rejects writes to the job's ubiquitous broadcast
// table during a run, on both backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/codec.h"
#include "ebsp/engine.h"
#include "ebsp/library.h"
#include "kvstore/store_factory.h"
#include "kvstore/store_util.h"
#include "matrix/summa.h"

namespace ripple::ebsp {
namespace {

// kRemote resolves (with RIPPLE_REMOTE_* unset) to an implicit loopback
// net::Server, so the remote legs push every byte of application state
// through the frame codec and TCP.  kLog (with no path configured) opens
// an ephemeral on-disk directory, so its legs push every byte through
// the log-structured durable layout.
const std::vector<kv::StoreBackend> kBackends = {
    kv::StoreBackend::kPartitioned, kv::StoreBackend::kShard,
    kv::StoreBackend::kRemote, kv::StoreBackend::kLog};

graph::Graph testGraph(std::uint32_t vertices, std::uint32_t edges,
                       std::uint64_t seed) {
  graph::PowerLawOptions options;
  options.vertices = vertices;
  options.edges = edges;
  options.seed = seed;
  return graph::generatePowerLaw(options);
}

// ---------------------------------------------------------------------
// Byte-identity: PageRank (sync strategy, FP rank sums).
// ---------------------------------------------------------------------

TEST(BackendDifferential, PageRankByteIdenticalAcrossBackends) {
  const graph::Graph g = testGraph(300, 1800, 21);

  auto run = [&](kv::StoreBackend backend, int threads) {
    auto store = kv::makeStore(backend, 6);
    apps::loadPageRankGraph(*store, "pr_graph", g, 6);
    EngineOptions eopts;
    eopts.threads = threads;
    Engine engine(store, eopts);
    apps::PageRankOptions options;
    options.iterations = 5;
    apps::runPageRank(engine, options);
    auto state = kv::readAll(*store->lookupTable("pr_graph"));
    std::sort(state.begin(), state.end());
    return state;
  };

  const auto baseline = run(kv::StoreBackend::kPartitioned, 1);
  ASSERT_FALSE(baseline.empty());
  for (const kv::StoreBackend backend : kBackends) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string(kv::storeBackendName(backend)) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(run(backend, threads), baseline);
    }
  }
}

// ---------------------------------------------------------------------
// Byte-identity: SSSP (sync strategy with aggregators).
// ---------------------------------------------------------------------

TEST(BackendDifferential, SsspIdenticalAcrossBackends) {
  const graph::Graph g = testGraph(250, 1200, 4);

  auto run = [&](kv::StoreBackend backend, int threads) {
    EngineOptions eopts;
    eopts.threads = threads;
    eopts.storeBackend = backend;
    auto store = makeEngineStore(eopts, 6);
    Engine engine(store, eopts);
    apps::SsspOptions options;
    options.parts = 6;
    apps::SsspDriver driver(engine, options);
    driver.loadGraph(g);
    driver.initialize();
    return driver.distances(g.vertexCount());
  };

  const auto baseline = run(kv::StoreBackend::kPartitioned, 1);
  ASSERT_FALSE(baseline.empty());
  for (const kv::StoreBackend backend : kBackends) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string(kv::storeBackendName(backend)) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(run(backend, threads), baseline);
    }
  }
}

// ---------------------------------------------------------------------
// Byte-identity: SUMMA on BOTH strategies (the no-sync-eligible
// workload), bit-identical C blocks (tolerance 0.0).
// ---------------------------------------------------------------------

TEST(BackendDifferential, SummaBitIdenticalAcrossBackendsBothStrategies) {
  constexpr std::uint32_t kGrid = 3;
  constexpr std::size_t kBlock = 8;
  Rng rng(123);
  matrix::BlockMatrix a(kGrid, kBlock);
  matrix::BlockMatrix b(kGrid, kBlock);
  a.fillRandom(rng);
  b.fillRandom(rng);

  auto run = [&](kv::StoreBackend backend, bool synchronized, int threads) {
    auto store = kv::makeStore(backend, kGrid * kGrid);
    EngineOptions eopts;
    eopts.threads = threads;
    Engine engine(store, eopts);
    matrix::SummaOptions options;
    options.synchronized = synchronized;
    options.parts = kGrid * kGrid;
    return runSumma(engine, a, b, options).c;
  };

  for (const bool synchronized : {true, false}) {
    SCOPED_TRACE(synchronized ? "sync" : "no-sync");
    const matrix::BlockMatrix baseline =
        run(kv::StoreBackend::kPartitioned, synchronized, 1);
    for (const kv::StoreBackend backend : kBackends) {
      for (const int threads : {1, 8}) {
        SCOPED_TRACE(std::string(kv::storeBackendName(backend)) +
                     " threads=" + std::to_string(threads));
        const matrix::BlockMatrix c = run(backend, synchronized, threads);
        EXPECT_TRUE(c.approxEqual(baseline, 0.0));  // Bit-identical.
      }
    }
  }
}

// ---------------------------------------------------------------------
// Broadcast-table seal: a write to the job's ubiquitous table during a
// run is rejected on every backend and under both strategies.
// ---------------------------------------------------------------------

TEST(BackendDifferential, BroadcastWriteDuringRunRejected) {
  for (const kv::StoreBackend backend : kBackends) {
    for (const bool synchronized : {true, false}) {
      SCOPED_TRACE(std::string(kv::storeBackendName(backend)) +
                   (synchronized ? " sync" : " no-sync"));
      auto store = kv::makeStore(backend, 4);
      kv::TableOptions refOptions;
      refOptions.parts = 4;
      store->createTable("ref", std::move(refOptions));
      kv::TableOptions ubiOptions;
      ubiOptions.ubiquitous = true;
      auto config = store->createTable("config", std::move(ubiOptions));
      config->put("factor", "1");

      RawJob job;
      job.referenceTable = "ref";
      job.stateTableNames = {"ref"};
      job.broadcastTable = "config";
      if (!synchronized) {
        job.properties.oneMsg = true;
        job.properties.noContinue = true;
        job.properties.noSsOrder = true;
      }
      job.compute.compute = [&](RawComputeContext&) {
        config->put("factor", "2");  // Must be rejected: table is sealed.
        return false;
      };
      auto loader = std::make_shared<VectorLoader>();
      loader->message("a", "go");
      job.loaders = {loader};

      EngineOptions eopts;
      eopts.mode = synchronized ? ExecutionMode::kSynchronized
                                : ExecutionMode::kNoSync;
      Engine engine(store, eopts);
      EXPECT_THROW(engine.run(job), std::logic_error);
      // The run is over: the seal is released and the write goes through.
      config->put("factor", "3");
      EXPECT_EQ(config->get("factor"), "3");
    }
  }
}

// ---------------------------------------------------------------------
// Multi-server remote: the same PageRank result when state shards across
// TWO loopback servers (parts interleave endpoint 0/1 under the
// placement map) as when it lives in-process.
// ---------------------------------------------------------------------

TEST(BackendDifferential, PageRankIdenticalAcrossTwoRemoteServers) {
  const graph::Graph g = testGraph(200, 1000, 7);

  auto run = [&](kv::StoreBackend backend, int threads) {
    auto store = kv::makeStore(backend, 6);
    apps::loadPageRankGraph(*store, "pr_graph", g, 6);
    EngineOptions eopts;
    eopts.threads = threads;
    Engine engine(store, eopts);
    apps::PageRankOptions options;
    options.iterations = 4;
    apps::runPageRank(engine, options);
    auto state = kv::readAll(*store->lookupTable("pr_graph"));
    std::sort(state.begin(), state.end());
    return state;
  };

  const auto baseline = run(kv::StoreBackend::kPartitioned, 1);
  ASSERT_FALSE(baseline.empty());
  ::setenv("RIPPLE_REMOTE_SERVERS", "2", 1);
  for (const int threads : {1, 8}) {
    SCOPED_TRACE("remote x2 servers, threads=" + std::to_string(threads));
    EXPECT_EQ(run(kv::StoreBackend::kRemote, threads), baseline);
  }
  ::unsetenv("RIPPLE_REMOTE_SERVERS");
}

// ---------------------------------------------------------------------
// Backend selection plumbing.
// ---------------------------------------------------------------------

TEST(BackendDifferential, ParseStoreBackend) {
  EXPECT_EQ(kv::parseStoreBackend("partitioned"),
            kv::StoreBackend::kPartitioned);
  EXPECT_EQ(kv::parseStoreBackend("shard"), kv::StoreBackend::kShard);
  EXPECT_EQ(kv::parseStoreBackend("local"), kv::StoreBackend::kLocal);
  EXPECT_EQ(kv::parseStoreBackend("remote"), kv::StoreBackend::kRemote);
  EXPECT_EQ(kv::parseStoreBackend("log"), kv::StoreBackend::kLog);
  EXPECT_EQ(kv::parseStoreBackend(""), std::nullopt);
  EXPECT_EQ(kv::parseStoreBackend("Log"), std::nullopt);
  EXPECT_EQ(kv::parseStoreBackend("Shard"), std::nullopt);
  EXPECT_EQ(kv::parseStoreBackend("Remote"), std::nullopt);
  EXPECT_EQ(kv::parseStoreBackend("rocksdb"), std::nullopt);
}

TEST(BackendDifferential, ResolveStoreBackendHonorsEnv) {
  // Concrete requests pass through regardless of the environment.
  ::setenv("RIPPLE_STORE", "local", 1);
  EXPECT_EQ(kv::resolveStoreBackend(kv::StoreBackend::kShard),
            kv::StoreBackend::kShard);

  // kDefault resolves through RIPPLE_STORE...
  EXPECT_EQ(kv::resolveStoreBackend(kv::StoreBackend::kDefault),
            kv::StoreBackend::kLocal);
  ::setenv("RIPPLE_STORE", "shard", 1);
  EXPECT_EQ(kv::resolveStoreBackend(kv::StoreBackend::kDefault),
            kv::StoreBackend::kShard);

  // ...with a warn-and-fallback (never a throw) on garbage, and the
  // partitioned default when unset.
  ::setenv("RIPPLE_STORE", "no-such-backend", 1);
  EXPECT_EQ(kv::resolveStoreBackend(kv::StoreBackend::kDefault),
            kv::StoreBackend::kPartitioned);
  ::unsetenv("RIPPLE_STORE");
  EXPECT_EQ(kv::resolveStoreBackend(kv::StoreBackend::kDefault),
            kv::StoreBackend::kPartitioned);
}

TEST(BackendDifferential, MakeEngineStoreUsesRequestedBackend) {
  ::unsetenv("RIPPLE_STORE");
  EngineOptions eopts;
  eopts.storeBackend = kv::StoreBackend::kShard;
  EXPECT_STREQ(makeEngineStore(eopts, 4)->backendName(), "shard");
  eopts.storeBackend = kv::StoreBackend::kLog;
  EXPECT_STREQ(makeEngineStore(eopts, 4)->backendName(), "log");
  eopts.storeBackend = kv::StoreBackend::kDefault;
  EXPECT_STREQ(makeEngineStore(eopts, 4)->backendName(), "partitioned");
  ::setenv("RIPPLE_STORE", "shard", 1);
  EXPECT_STREQ(makeEngineStore(eopts, 4)->backendName(), "shard");
  ::unsetenv("RIPPLE_STORE");
}

}  // namespace
}  // namespace ripple::ebsp
