// The nine job properties and the five derived optimizations (§II-A).

#include "ebsp/properties.h"

#include <gtest/gtest.h>

#include "ebsp/raw_job.h"

namespace ripple::ebsp {
namespace {

EffectiveProperties make(JobProperties declared, bool noAgg,
                         bool noClientSync) {
  EffectiveProperties p;
  p.declared = declared;
  p.noAgg = noAgg;
  p.noClientSync = noClientSync;
  return p;
}

TEST(Properties, DefaultsAreConservative) {
  EffectiveProperties p;
  EXPECT_TRUE(p.noSort());  // needs-order defaults off.
  EXPECT_FALSE(p.noCollect());
  EXPECT_FALSE(p.runAnywhere());
  EXPECT_FALSE(p.noSync());
  EXPECT_FALSE(p.fastRecovery());
}

TEST(Properties, NoSortIffNotNeedsOrder) {
  JobProperties d;
  d.needsOrder = true;
  EXPECT_FALSE(make(d, true, true).noSort());
  d.needsOrder = false;
  EXPECT_TRUE(make(d, true, true).noSort());
}

TEST(Properties, NoCollectNeedsBothOneMsgAndNoContinue) {
  JobProperties d;
  d.oneMsg = true;
  EXPECT_FALSE(make(d, true, true).noCollect());
  d.noContinue = true;
  EXPECT_TRUE(make(d, true, true).noCollect());
  d.oneMsg = false;
  EXPECT_FALSE(make(d, true, true).noCollect());
}

TEST(Properties, RunAnywhereNeedsNoCollectAndRareState) {
  JobProperties d;
  d.oneMsg = true;
  d.noContinue = true;
  EXPECT_FALSE(make(d, true, true).runAnywhere());
  d.rareState = true;
  EXPECT_TRUE(make(d, true, true).runAnywhere());
  d.noContinue = false;  // Breaks no-collect.
  EXPECT_FALSE(make(d, true, true).runAnywhere());
}

struct NoSyncCase {
  bool oneMsg, noContinue, noSsOrder, incremental, noAgg, noClientSync;
  bool expected;
};

class NoSyncTest : public ::testing::TestWithParam<NoSyncCase> {};

TEST_P(NoSyncTest, Predicate) {
  const NoSyncCase& c = GetParam();
  JobProperties d;
  d.oneMsg = c.oneMsg;
  d.noContinue = c.noContinue;
  d.noSsOrder = c.noSsOrder;
  d.incremental = c.incremental;
  EXPECT_EQ(make(d, c.noAgg, c.noClientSync).noSync(), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, NoSyncTest,
    ::testing::Values(
        // (no-collect & no-ss-order) path.
        NoSyncCase{true, true, true, false, true, true, true},
        NoSyncCase{true, true, false, false, true, true, false},
        NoSyncCase{true, false, true, false, true, true, false},
        NoSyncCase{false, true, true, false, true, true, false},
        // incremental path.
        NoSyncCase{false, false, false, true, true, true, true},
        // Aggregators or an aborter always forbid no-sync.
        NoSyncCase{true, true, true, false, false, true, false},
        NoSyncCase{true, true, true, false, true, false, false},
        NoSyncCase{false, false, false, true, false, true, false},
        NoSyncCase{false, false, false, true, true, false, false},
        // Both paths simultaneously is still fine.
        NoSyncCase{true, true, true, true, true, true, true}));

TEST(Properties, FastRecoveryTracksDeterministic) {
  JobProperties d;
  d.deterministic = true;
  EXPECT_TRUE(make(d, false, false).fastRecovery());
}

TEST(Properties, DescribeListsActiveFlags) {
  JobProperties d;
  d.oneMsg = true;
  d.noContinue = true;
  const std::string s = make(d, true, true).describe();
  EXPECT_NE(s.find("one-msg"), std::string::npos);
  EXPECT_NE(s.find("no-collect"), std::string::npos);
  EXPECT_EQ(s.find("needs-order"), std::string::npos);
}

TEST(DeriveProperties, DetectsNoAggAndNoClientSync) {
  RawJob job;
  // "The first two properties can easily be detected by Ripple."
  EXPECT_TRUE(deriveProperties(job).noAgg);
  EXPECT_TRUE(deriveProperties(job).noClientSync);

  job.aggregators.emplace("a", countAggregator());
  EXPECT_FALSE(deriveProperties(job).noAgg);

  job.aborter = [](const AggregateReader&, int) { return false; };
  EXPECT_FALSE(deriveProperties(job).noClientSync);
}

TEST(ValidateRawJob, RejectsMissingCompute) {
  RawJob job;
  job.referenceTable = "t";
  EXPECT_THROW(validateRawJob(job), std::invalid_argument);
}

TEST(ValidateRawJob, RejectsMissingReferenceTable) {
  RawJob job;
  job.compute.compute = [](RawComputeContext&) { return false; };
  EXPECT_THROW(validateRawJob(job), std::invalid_argument);
}

TEST(ValidateRawJob, RejectsWriterIndexOutOfRange) {
  RawJob job;
  job.compute.compute = [](RawComputeContext&) { return false; };
  job.referenceTable = "t";
  job.stateTableNames = {"s"};
  job.writers[3] = nullptr;
  EXPECT_THROW(validateRawJob(job), std::invalid_argument);
}

}  // namespace
}  // namespace ripple::ebsp
