// Fault tolerance: checkpoint/restore machinery and engine-level
// recovery (paper §IV-A outline; `deterministic` fast-recovery from
// §II-A).

#include "ebsp/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/codec.h"
#include "ebsp/library.h"
#include "ebsp/sync_engine.h"
#include "fault/fault.h"
#include "fault/faulty_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"

namespace ripple::ebsp {
namespace {

TEST(Checkpointer, SnapshotAndRestore) {
  auto store = kv::PartitionedStore::create(3);
  kv::TableOptions options;
  options.parts = 3;
  kv::TablePtr table = store->createTable("data", std::move(options));
  for (int i = 0; i < 30; ++i) {
    table->put("k" + std::to_string(i), "v" + std::to_string(i));
  }

  Checkpointer ck(store, "test", {table}, table);
  EXPECT_FALSE(ck.hasCheckpoint());
  std::map<std::string, Bytes> aggs;
  aggs["total"] = encodeToBytes<std::int64_t>(7);
  ck.checkpoint(5, aggs);
  EXPECT_TRUE(ck.hasCheckpoint());

  // Corrupt the live table: delete a part, overwrite values.
  table->clearPart(0);
  table->put("k1", "corrupted");
  table->put("extra", "junk");

  std::map<std::string, Bytes> restoredAggs;
  const int step = ck.restore(restoredAggs);
  EXPECT_EQ(step, 5);
  EXPECT_EQ(decodeFromBytes<std::int64_t>(restoredAggs.at("total")), 7);
  EXPECT_EQ(table->size(), 30u);
  EXPECT_EQ(table->get("k1"), "v1");
  EXPECT_EQ(table->get("extra"), std::nullopt);
}

TEST(Checkpointer, RestoreWithoutCheckpointThrows) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  kv::TablePtr table = store->createTable("data", std::move(options));
  Checkpointer ck(store, "t2", {table}, table);
  std::map<std::string, Bytes> aggs;
  EXPECT_THROW(ck.restore(aggs), std::runtime_error);
}

TEST(Checkpointer, SecondCheckpointReplacesFirst) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  kv::TablePtr table = store->createTable("data", std::move(options));
  Checkpointer ck(store, "t3", {table}, table);

  table->put("k", "first");
  ck.checkpoint(1, {});
  table->put("k", "second");
  ck.checkpoint(2, {});
  table->put("k", "dirty");

  std::map<std::string, Bytes> aggs;
  EXPECT_EQ(ck.restore(aggs), 2);
  EXPECT_EQ(table->get("k"), "second");
}

TEST(Checkpointer, CleanupDropsShadowTables) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  kv::TablePtr table = store->createTable("data", std::move(options));
  {
    Checkpointer ck(store, "t4", {table}, table);
    ck.checkpoint(1, {});
    EXPECT_NE(store->lookupTable("__ck_t4_0"), nullptr);
  }
  EXPECT_EQ(store->lookupTable("__ck_t4_0"), nullptr);
  EXPECT_EQ(store->lookupTable("__ck_t4_meta"), nullptr);
}

TEST(Checkpointer, TornCheckpointIsTreatedAsAbsent) {
  // §IV-A ordering rule, made checkable: a checkpoint interrupted after
  // its shadow writes but before its meta records commit must be treated
  // as absent — and must not resurrect the previous checkpoint either,
  // since its shadows were already overwritten.  With 2 parts each
  // checkpoint performs 5 meta puts (begin, step/0, step/1, aggs,
  // commit), so puts 6..10 belong to the second checkpoint.
  for (const std::uint64_t tearAt : {7, 10}) {  // step/0 put; commit put.
    SCOPED_TRACE("tearAt=" + std::to_string(tearAt));
    fault::FaultRule rule;
    rule.ops = maskOf(fault::Op::kPut);
    rule.tableSubstring = "_meta";
    rule.nth = tearAt;
    rule.maxInjections = 1;
    fault::FaultPlan plan;
    plan.rules.push_back(rule);
    auto injector = std::make_shared<fault::FaultInjector>(plan);
    auto store = fault::FaultyStore::wrap(kv::PartitionedStore::create(2),
                                          injector);

    kv::TableOptions options;
    options.parts = 2;
    kv::TablePtr table = store->createTable("data", std::move(options));
    table->put("k", "v1");
    Checkpointer ck(store, "torn", {table}, table);
    ck.checkpoint(1, {});
    ASSERT_TRUE(ck.hasCheckpoint());

    table->put("k", "v2");
    EXPECT_THROW(ck.checkpoint(2, {}), fault::TransientStoreError);
    EXPECT_FALSE(ck.hasCheckpoint());
    std::map<std::string, Bytes> aggs;
    EXPECT_THROW(ck.restore(aggs), std::runtime_error);

    // A clean re-checkpoint (the engine retries them) heals everything.
    ck.checkpoint(2, {});
    EXPECT_TRUE(ck.hasCheckpoint());
    EXPECT_EQ(ck.restore(aggs), 2);
    EXPECT_EQ(table->get("k"), "v2");
  }
}

// ---------------------------------------------------------------------
// Engine-level recovery.
// ---------------------------------------------------------------------

/// Deterministic accumulation job: each component's state counts its
/// invocations; a chain of messages drives `rounds` steps.
RawJob chainJob(int rounds, bool deterministic) {
  RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.properties.deterministic = deterministic;
  job.compute.compute = [rounds](RawComputeContext& ctx) {
    const auto prev = ctx.readState(0);
    const std::int64_t count =
        prev ? decodeFromBytes<std::int64_t>(*prev) + 1 : 1;
    ctx.writeState(0, encodeToBytes(count));
    if (ctx.stepNum() < rounds) {
      // Each of 8 components messages its successor.
      const auto id = decodeFromBytes<int>(ctx.key());
      ctx.outputMessage(encodeToBytes((id + 1) % 8), encodeToBytes(1));
    }
    return false;
  };
  auto loader = std::make_shared<VectorLoader>();
  for (int i = 0; i < 8; ++i) {
    loader->message(encodeToBytes(i), encodeToBytes(0));
  }
  job.loaders = {loader};
  return job;
}

std::vector<std::pair<kv::Key, kv::Value>> finalState(kv::KVStore& store) {
  auto all = kv::readAll(*store.lookupTable("ref"));
  std::sort(all.begin(), all.end());
  return all;
}

TEST(Recovery, FailureAtBarrierReplaysToSameResult) {
  // Reference run without failure.
  std::vector<std::pair<kv::Key, kv::Value>> expected;
  {
    auto store = kv::PartitionedStore::create(3);
    kv::TableOptions options;
    options.parts = 3;
    store->createTable("ref", std::move(options));
    RawJob job = chainJob(10, true);
    SyncEngineOptions engineOptions;
    engineOptions.checkpoint.enabled = true;
    engineOptions.checkpoint.interval = 3;
    SyncEngine engine(store, engineOptions);
    const JobResult r = engine.run(job);
    EXPECT_EQ(r.steps, 10);
    expected = finalState(*store);
  }

  // Run with an injected shard failure at step 7.
  {
    auto store = kv::PartitionedStore::create(3);
    kv::TableOptions options;
    options.parts = 3;
    store->createTable("ref", std::move(options));
    RawJob job = chainJob(10, true);
    SyncEngineOptions engineOptions;
    engineOptions.checkpoint.enabled = true;
    engineOptions.checkpoint.interval = 3;
    bool failed = false;
    engineOptions.onBarrier = [&failed](int step) {
      if (!failed && step == 7) {
        failed = true;
        throw SimulatedFailure("kill shard");
      }
    };
    SyncEngine engine(store, engineOptions);
    const JobResult r = engine.run(job);
    EXPECT_EQ(r.metrics.recoveries, 1u);
    EXPECT_EQ(finalState(*store), expected);
  }
}

TEST(Recovery, FailureWithoutCheckpointThrows) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("ref", std::move(options));
  RawJob job = chainJob(5, true);
  SyncEngineOptions engineOptions;  // Checkpointing disabled.
  engineOptions.onBarrier = [](int step) {
    if (step == 2) {
      throw SimulatedFailure("kill shard");
    }
  };
  SyncEngine engine(store, engineOptions);
  EXPECT_THROW(engine.run(job), std::runtime_error);
}

TEST(Recovery, NonDeterministicJobsCheckpointEveryBarrier) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("ref", std::move(options));
  RawJob job = chainJob(6, /*deterministic=*/false);
  SyncEngineOptions engineOptions;
  engineOptions.checkpoint.enabled = true;
  engineOptions.checkpoint.interval = 4;  // Ignored: forced to 1.
  SyncEngine engine(store, engineOptions);
  const JobResult r = engine.run(job);
  EXPECT_EQ(r.metrics.checkpoints, 6u);
}

TEST(Recovery, DeterministicJobsHonorInterval) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("ref", std::move(options));
  RawJob job = chainJob(6, /*deterministic=*/true);
  SyncEngineOptions engineOptions;
  engineOptions.checkpoint.enabled = true;
  engineOptions.checkpoint.interval = 3;
  SyncEngine engine(store, engineOptions);
  const JobResult r = engine.run(job);
  EXPECT_EQ(r.metrics.checkpoints, 2u);  // Steps 3 and 6.
}

TEST(Recovery, DirectOutputNeedsDeterminism) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("ref", std::move(options));
  RawJob job = chainJob(3, /*deterministic=*/false);
  job.directOutputter = std::make_shared<NullExporter>();
  SyncEngineOptions engineOptions;
  engineOptions.checkpoint.enabled = true;
  SyncEngine engine(store, engineOptions);
  EXPECT_THROW(engine.run(job), std::invalid_argument);
}

TEST(Recovery, DeterministicReplaySuppressesDuplicateDirectOutput) {
  auto collector = std::make_shared<CollectingExporter>();
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("ref", std::move(options));
  RawJob job = chainJob(6, /*deterministic=*/true);
  // Each invocation emits one direct-output pair keyed (step, key).
  auto inner = job.compute.compute;
  job.compute.compute = [inner](RawComputeContext& ctx) {
    ctx.directOutput(encodeToBytes(std::pair<int, Bytes>(
                         ctx.stepNum(), Bytes(ctx.key()))),
                     "out");
    return inner(ctx);
  };
  job.directOutputter = collector;
  SyncEngineOptions engineOptions;
  engineOptions.checkpoint.enabled = true;
  engineOptions.checkpoint.interval = 2;
  bool failed = false;
  engineOptions.onBarrier = [&failed](int step) {
    if (!failed && step == 5) {
      failed = true;
      throw SimulatedFailure("kill shard");
    }
  };
  SyncEngine engine(store, engineOptions);
  engine.run(job);
  // 6 steps x 8 components, no duplicates despite the replay of step 5
  // (restored from the checkpoint at step 4).
  auto pairs = collector->take();
  std::set<Bytes> keys;
  for (auto& [k, v] : pairs) {
    EXPECT_TRUE(keys.insert(k).second) << "duplicate direct output";
  }
  EXPECT_EQ(keys.size(), 48u);
}

}  // namespace
}  // namespace ripple::ebsp
