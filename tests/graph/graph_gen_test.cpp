#include "graph/graph_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/pregel.h"

namespace ripple::graph {
namespace {

TEST(PowerLawGen, ProducesRequestedShape) {
  PowerLawOptions options;
  options.vertices = 1000;
  options.edges = 10'000;
  options.seed = 7;
  const Graph g = generatePowerLaw(options);
  EXPECT_EQ(g.vertexCount(), 1000u);
  // Bounded dedupe retries may drop a few edges but not many.
  EXPECT_GT(g.edges, 9'500u);
  EXPECT_LE(g.edges, 10'000u);
  std::uint64_t degreeSum = 0;
  for (const auto& nbrs : g.adj) {
    degreeSum += nbrs.size();
  }
  EXPECT_EQ(degreeSum, g.edges);
}

TEST(PowerLawGen, DeterministicPerSeed) {
  PowerLawOptions options;
  options.vertices = 200;
  options.edges = 1000;
  options.seed = 5;
  const Graph a = generatePowerLaw(options);
  const Graph b = generatePowerLaw(options);
  EXPECT_EQ(a.adj, b.adj);
  options.seed = 6;
  const Graph c = generatePowerLaw(options);
  EXPECT_NE(a.adj, c.adj);
}

TEST(PowerLawGen, DegreeDistributionIsSkewed) {
  PowerLawOptions options;
  options.vertices = 2000;
  options.edges = 40'000;
  options.seed = 11;
  const Graph g = generatePowerLaw(options);
  std::vector<std::size_t> degrees;
  degrees.reserve(g.vertexCount());
  for (const auto& nbrs : g.adj) {
    degrees.push_back(nbrs.size());
  }
  std::sort(degrees.rbegin(), degrees.rend());
  const std::size_t top1pct =
      std::accumulate(degrees.begin(), degrees.begin() + 20, std::size_t{0});
  // "Biased power-law edge attachments": the hubs carry far more than a
  // uniform share (20/2000 of edges = 400).
  EXPECT_GT(top1pct, 1200u);
}

TEST(PowerLawGen, UndirectedInsertsBothDirections) {
  PowerLawOptions options;
  options.vertices = 100;
  options.edges = 500;
  options.undirected = true;
  options.seed = 3;
  const Graph g = generatePowerLaw(options);
  for (VertexId u = 0; u < g.vertexCount(); ++u) {
    for (const VertexId v : g.adj[u]) {
      const auto& back = g.adj[v];
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(PowerLawGen, NoSelfLoops) {
  PowerLawOptions options;
  options.vertices = 500;
  options.edges = 5000;
  options.seed = 9;
  const Graph g = generatePowerLaw(options);
  for (VertexId u = 0; u < g.vertexCount(); ++u) {
    EXPECT_EQ(std::count(g.adj[u].begin(), g.adj[u].end(), u), 0);
  }
}

TEST(PowerLawGen, RejectsEmptyGraph) {
  PowerLawOptions options;
  EXPECT_THROW(generatePowerLaw(options), std::invalid_argument);
}

TEST(ChangeBatch, GeneratesRequestedCount) {
  Rng rng(1);
  const auto batch = randomChangeBatch(100, 50, 1.8, rng);
  EXPECT_EQ(batch.size(), 50u);
  for (const GraphChange& c : batch) {
    EXPECT_LT(c.u, 100u);
    EXPECT_LT(c.v, 100u);
    EXPECT_NE(c.u, c.v);
  }
}

TEST(ApplyChanges, DetectsNoOps) {
  Graph g;
  g.adj.resize(4);
  std::vector<GraphChange> batch;
  batch.push_back({true, 0, 1});   // Effective add.
  batch.push_back({true, 0, 1});   // No-op duplicate add.
  batch.push_back({false, 2, 3});  // No-op remove (absent).
  batch.push_back({false, 0, 1});  // Effective remove.
  const auto effective = applyChanges(g, batch);
  ASSERT_EQ(effective.size(), 2u);
  EXPECT_TRUE(effective[0].add);
  EXPECT_FALSE(effective[1].add);
  EXPECT_EQ(g.edges, 0u);
  EXPECT_TRUE(g.adj[0].empty());
  EXPECT_TRUE(g.adj[1].empty());
}

TEST(ApplyChanges, MaintainsUndirectedSymmetry) {
  Graph g;
  g.adj.resize(10);
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    const auto batch = randomChangeBatch(10, 10, 1.5, rng);
    applyChanges(g, batch);
  }
  for (VertexId u = 0; u < 10; ++u) {
    for (const VertexId v : g.adj[u]) {
      const auto& back = g.adj[v];
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

TEST(BfsDistances, SmallGraph) {
  Graph g;
  g.adj.resize(6);
  auto addEdge = [&](VertexId a, VertexId b) {
    g.adj[a].push_back(b);
    g.adj[b].push_back(a);
  };
  addEdge(0, 1);
  addEdge(1, 2);
  addEdge(2, 3);
  addEdge(0, 4);
  // Vertex 5 isolated.
  const auto dist = bfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], 1);
  EXPECT_EQ(dist[5], -1);
}

TEST(TotalOutDegree, CountsDirectedEdges) {
  Graph g;
  g.adj.resize(3);
  g.adj[0] = {1, 2};
  g.adj[1] = {2};
  EXPECT_EQ(totalOutDegree(g), 3u);
}

}  // namespace
}  // namespace ripple::graph
