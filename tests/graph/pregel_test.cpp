// Graph EBSP (Pregel-like) layer: vertex programs, voteToHalt
// re-activation, combiners, aggregators, and the superstep limit.

#include "graph/pregel.h"

#include <gtest/gtest.h>

#include "kvstore/partitioned_store.h"

namespace ripple::graph {
namespace {

/// Max-value propagation: every vertex adopts the largest value it has
/// heard and gossips on change — the classic Pregel example.
class MaxValueProgram : public VertexProgram<std::int64_t, std::int64_t> {
 public:
  void compute(Context& ctx,
               const std::vector<std::int64_t>& messages) override {
    std::int64_t best = ctx.value();
    for (const std::int64_t m : messages) {
      best = std::max(best, m);
    }
    if (ctx.superstep() == 1 || best > ctx.value()) {
      ctx.setValue(best);
      ctx.sendToAllNeighbors(best);
    }
    ctx.voteToHalt();
  }

  bool hasCombiner() const override { return true; }
  std::int64_t combine(VertexId, const std::int64_t& a,
                       const std::int64_t& b) override {
    return std::max(a, b);
  }
};

Graph lineGraph(std::size_t n) {
  Graph g;
  g.adj.resize(n);
  for (VertexId u = 0; u + 1 < n; ++u) {
    g.adj[u].push_back(u + 1);
    g.adj[u + 1].push_back(u);
  }
  return g;
}

TEST(Pregel, MaxValuePropagatesAcrossComponent) {
  auto store = kv::PartitionedStore::create(4);
  const Graph g = lineGraph(20);
  loadVertexTable<std::int64_t>(*store, "verts", g, 4, 0);
  // Give each vertex its id as initial value.
  kv::TypedTable<VertexId, VertexState<std::int64_t>> table(
      store->lookupTable("verts"));
  for (VertexId u = 0; u < 20; ++u) {
    auto s = table.get(u);
    s->value = u;
    table.put(u, *s);
  }

  ebsp::Engine engine(store);
  MaxValueProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  const PregelResult r = runPregel(engine, program, options);

  for (VertexId u = 0; u < 20; ++u) {
    EXPECT_EQ(table.get(u)->value, 19);
  }
  // A 20-vertex line needs ~20 supersteps for the max to reach the end.
  EXPECT_GE(r.job.steps, 19);
  EXPECT_GT(r.job.metrics.combinerCalls, 0u);
}

TEST(Pregel, HaltedVerticesAreNotReinvoked) {
  // Vertices halt immediately and send nothing: one superstep total.
  class HaltProgram : public VertexProgram<std::int64_t, std::int64_t> {
   public:
    void compute(Context& ctx, const std::vector<std::int64_t>&) override {
      ctx.voteToHalt();
    }
  };
  auto store = kv::PartitionedStore::create(2);
  const Graph g = lineGraph(10);
  loadVertexTable<std::int64_t>(*store, "verts", g, 2, 0);
  ebsp::Engine engine(store);
  HaltProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  const PregelResult r = runPregel(engine, program, options);
  EXPECT_EQ(r.job.steps, 1);
  EXPECT_EQ(r.job.metrics.computeInvocations, 10u);
}

TEST(Pregel, MessageReactivatesHaltedVertex) {
  // Vertex 0 sends to vertex 1 in superstep 1 and halts; vertex 1 halts
  // in superstep 1 but is re-activated by the message in superstep 2.
  class PokeProgram : public VertexProgram<std::int64_t, std::int64_t> {
   public:
    void compute(Context& ctx,
                 const std::vector<std::int64_t>& messages) override {
      if (ctx.superstep() == 1 && ctx.id() == 0) {
        ctx.sendMessage(1, 42);
      }
      if (!messages.empty()) {
        ctx.setValue(messages[0]);
      }
      ctx.voteToHalt();
    }
  };
  auto store = kv::PartitionedStore::create(2);
  const Graph g = lineGraph(3);
  loadVertexTable<std::int64_t>(*store, "verts", g, 2, 0);
  ebsp::Engine engine(store);
  PokeProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  const PregelResult r = runPregel(engine, program, options);
  EXPECT_EQ(r.job.steps, 2);
  kv::TypedTable<VertexId, VertexState<std::int64_t>> table(
      store->lookupTable("verts"));
  EXPECT_EQ(table.get(1)->value, 42);
  EXPECT_EQ(table.get(2)->value, 0);
}

TEST(Pregel, MaxSuperstepsAborts) {
  // A program that never halts.
  class SpinProgram : public VertexProgram<std::int64_t, std::int64_t> {
   public:
    void compute(Context&, const std::vector<std::int64_t>&) override {}
  };
  auto store = kv::PartitionedStore::create(2);
  const Graph g = lineGraph(4);
  loadVertexTable<std::int64_t>(*store, "verts", g, 2, 0);
  ebsp::Engine engine(store);
  SpinProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  options.maxSupersteps = 7;
  const PregelResult r = runPregel(engine, program, options);
  EXPECT_TRUE(r.job.aborted);
  EXPECT_EQ(r.job.steps, 7);
}

TEST(Pregel, AggregatorsFlowThrough) {
  // Count active vertices per superstep via an aggregator.
  class CountProgram : public VertexProgram<std::int64_t, std::int64_t> {
   public:
    void compute(Context& ctx, const std::vector<std::int64_t>&) override {
      ctx.aggregate<std::uint64_t>("active", 1);
      if (ctx.superstep() >= 2) {
        ctx.voteToHalt();
      }
    }
    std::vector<ebsp::AggregatorDecl> aggregators() const override {
      return {{"active", ebsp::countAggregator()}};
    }
  };
  auto store = kv::PartitionedStore::create(2);
  const Graph g = lineGraph(6);
  loadVertexTable<std::int64_t>(*store, "verts", g, 2, 0);
  ebsp::Engine engine(store);
  CountProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  const PregelResult r = runPregel(engine, program, options);
  EXPECT_EQ(r.job.aggregate<std::uint64_t>("active"), 6u);
  EXPECT_EQ(r.job.steps, 2);
}

TEST(Pregel, EdgeMutationPersists) {
  class MutateProgram : public VertexProgram<std::int64_t, std::int64_t> {
   public:
    void compute(Context& ctx, const std::vector<std::int64_t>&) override {
      if (ctx.id() == 0) {
        ctx.addEdge(5);
        ctx.removeEdge(1);
      }
      ctx.voteToHalt();
    }
  };
  auto store = kv::PartitionedStore::create(2);
  const Graph g = lineGraph(6);
  loadVertexTable<std::int64_t>(*store, "verts", g, 2, 0);
  ebsp::Engine engine(store);
  MutateProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  runPregel(engine, program, options);
  kv::TypedTable<VertexId, VertexState<std::int64_t>> table(
      store->lookupTable("verts"));
  const auto edges = table.get(0)->outEdges;
  EXPECT_EQ(edges, std::vector<VertexId>{5});
}

TEST(Pregel, MessageToUnknownVertexCreatesIt) {
  class SpawnProgram : public VertexProgram<std::int64_t, std::int64_t> {
   public:
    void compute(Context& ctx,
                 const std::vector<std::int64_t>& messages) override {
      if (ctx.superstep() == 1) {
        ctx.sendMessage(999, 7);  // Not in the vertex table.
      }
      if (!messages.empty()) {
        ctx.setValue(messages[0]);
      }
      ctx.voteToHalt();
    }
  };
  auto store = kv::PartitionedStore::create(2);
  const Graph g = lineGraph(2);
  loadVertexTable<std::int64_t>(*store, "verts", g, 2, 0);
  ebsp::Engine engine(store);
  SpawnProgram program;
  PregelOptions options;
  options.vertexTable = "verts";
  runPregel(engine, program, options);
  kv::TypedTable<VertexId, VertexState<std::int64_t>> table(
      store->lookupTable("verts"));
  ASSERT_TRUE(table.get(999).has_value());
  EXPECT_EQ(table.get(999)->value, 7);
}

TEST(Pregel, VertexStateCodecRoundtrip) {
  VertexState<std::pair<double, std::string>> s;
  s.value = {1.5, "tag"};
  s.outEdges = {1, 2, 300000};
  const auto decoded =
      decodeFromBytes<VertexState<std::pair<double, std::string>>>(
          encodeToBytes(s));
  EXPECT_EQ(decoded.value.first, 1.5);
  EXPECT_EQ(decoded.value.second, "tag");
  EXPECT_EQ(decoded.outEdges, s.outEdges);
}

TEST(Pregel, MissingVertexTableThrows) {
  auto store = kv::PartitionedStore::create(2);
  ebsp::Engine engine(store);
  MaxValueProgram program;
  PregelOptions options;
  options.vertexTable = "missing";
  EXPECT_THROW(runPregel(engine, program, options), std::invalid_argument);
}

}  // namespace
}  // namespace ripple::graph
