#include "matrix/dense.h"

#include <gtest/gtest.h>

namespace ripple::matrix {
namespace {

TEST(DenseBlock, MultiplyAccumulateMatchesManual) {
  DenseBlock a(2, 3);
  DenseBlock b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = av[i * 3 + j];
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      b.at(i, j) = bv[i * 2 + j];
    }
  }
  DenseBlock c(2, 2);
  c.at(0, 0) = 1;  // Accumulation, not assignment.
  c.multiplyAccumulate(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 59.0);  // 58 + 1.
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(DenseBlock, MultiplyDimensionMismatchThrows) {
  DenseBlock a(2, 3);
  DenseBlock b(2, 2);
  DenseBlock c(2, 2);
  EXPECT_THROW(c.multiplyAccumulate(a, b), std::invalid_argument);
}

TEST(DenseBlock, AddElementwise) {
  DenseBlock a(2, 2);
  DenseBlock b(2, 2);
  a.at(0, 0) = 1;
  b.at(0, 0) = 2;
  a.add(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  DenseBlock wrong(3, 3);
  EXPECT_THROW(a.add(wrong), std::invalid_argument);
}

TEST(DenseBlock, CodecRoundtrip) {
  Rng rng(1);
  DenseBlock b(5, 7);
  b.fillRandom(rng);
  const DenseBlock decoded = decodeFromBytes<DenseBlock>(encodeToBytes(b));
  EXPECT_EQ(decoded.rows(), 5u);
  EXPECT_EQ(decoded.cols(), 7u);
  EXPECT_TRUE(decoded.approxEqual(b, 0.0));
}

TEST(DenseBlock, ApproxEqualTolerance) {
  DenseBlock a(1, 1);
  DenseBlock b(1, 1);
  a.at(0, 0) = 1.0;
  b.at(0, 0) = 1.0 + 1e-12;
  EXPECT_TRUE(a.approxEqual(b, 1e-9));
  EXPECT_FALSE(a.approxEqual(b, 1e-15));
  DenseBlock c(2, 1);
  EXPECT_FALSE(a.approxEqual(c));
}

TEST(DenseBlock, FrobeniusNorm) {
  DenseBlock b(1, 2);
  b.at(0, 0) = 3;
  b.at(0, 1) = 4;
  EXPECT_DOUBLE_EQ(b.frobeniusNorm(), 5.0);
}

TEST(BlockMatrix, ReferenceMultiplyIsAssociativeWithScalar) {
  Rng rng(2);
  BlockMatrix a(2, 4);
  BlockMatrix b(2, 4);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const BlockMatrix c = BlockMatrix::multiplyReference(a, b);
  // Spot check one element against a flat computation.
  const std::size_t n = 2 * 4;
  auto flat = [&](const BlockMatrix& m, std::size_t r, std::size_t col) {
    return m.block(r / 4, col / 4).at(r % 4, col % 4);
  };
  double expect = 0;
  for (std::size_t k = 0; k < n; ++k) {
    expect += flat(a, 3, k) * flat(b, k, 6);
  }
  EXPECT_NEAR(flat(c, 3, 6), expect, 1e-9);
}

TEST(BlockMatrix, MultiplyShapeMismatchThrows) {
  BlockMatrix a(2, 4);
  BlockMatrix b(3, 4);
  EXPECT_THROW(BlockMatrix::multiplyReference(a, b), std::invalid_argument);
}

TEST(BlockMatrix, ApproxEqual) {
  Rng rng(3);
  BlockMatrix a(2, 3);
  a.fillRandom(rng);
  BlockMatrix b = a;
  EXPECT_TRUE(a.approxEqual(b));
  b.block(1, 1).at(0, 0) += 1.0;
  EXPECT_FALSE(a.approxEqual(b));
}

}  // namespace
}  // namespace ripple::matrix
