// SUMMA on EBSP: correctness of both execution variants, the Table II
// schedule (simulator vs. paper vs. instrumented engine), and the no-sync
// makespan bound.

#include "matrix/summa.h"

#include <gtest/gtest.h>

#include "kvstore/partitioned_store.h"
#include "matrix/summa_schedule.h"

namespace ripple::matrix {
namespace {

struct SummaCase {
  std::uint32_t grid;
  std::size_t blockSize;
  bool synchronized;
};

class SummaCorrectnessTest : public ::testing::TestWithParam<SummaCase> {};

TEST_P(SummaCorrectnessTest, MatchesReferenceProduct) {
  const SummaCase& c = GetParam();
  Rng rng(100 + c.grid);
  BlockMatrix a(c.grid, c.blockSize);
  BlockMatrix b(c.grid, c.blockSize);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const BlockMatrix expected = BlockMatrix::multiplyReference(a, b);

  auto store = kv::PartitionedStore::create(c.grid * c.grid);
  ebsp::Engine engine(store);
  SummaOptions options;
  options.synchronized = c.synchronized;
  options.parts = c.grid * c.grid;
  const SummaResult r = runSumma(engine, a, b, options);
  EXPECT_TRUE(r.c.approxEqual(expected, 1e-9));
  if (c.synchronized) {
    EXPECT_GT(r.job.steps, 0);
  } else {
    EXPECT_EQ(r.job.steps, 0);  // No steps without barriers.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SummaCorrectnessTest,
    ::testing::Values(SummaCase{1, 8, true}, SummaCase{2, 8, true},
                      SummaCase{3, 8, true}, SummaCase{4, 8, true},
                      SummaCase{2, 8, false}, SummaCase{3, 8, false},
                      SummaCase{4, 8, false}, SummaCase{3, 32, true},
                      SummaCase{3, 32, false}),
    [](const ::testing::TestParamInfo<SummaCase>& info) {
      return "G" + std::to_string(info.param.grid) + "B" +
             std::to_string(info.param.blockSize) +
             (info.param.synchronized ? "Sync" : "NoSync");
    });

TEST(SummaSchedule, PaperTableIIRow) {
  const SummaSchedule s = simulateSummaSchedule(3);
  const std::vector<std::uint64_t> paper{1, 3, 6, 3, 6, 3, 5};
  EXPECT_EQ(s.multsPerStep, paper);
  EXPECT_EQ(s.steps(), 7u);
  EXPECT_EQ(s.totalMultiplies(), 27u);
  EXPECT_NEAR(s.slowdownFactor(3), 7.0 / 3.0, 1e-12);
}

class ScheduleInvariantsTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScheduleInvariantsTest, TotalsAndBounds) {
  const std::uint32_t g = GetParam();
  const SummaSchedule s = simulateSummaSchedule(g);
  EXPECT_EQ(s.totalMultiplies(),
            static_cast<std::uint64_t>(g) * g * g);
  // No step can do more multiplies than there are components.
  for (const std::uint64_t m : s.multsPerStep) {
    EXPECT_LE(m, static_cast<std::uint64_t>(g) * g);
  }
  // BSP needs at least g steps (each component multiplies g times, one
  // per step at most).
  EXPECT_GE(s.steps(), g);
  // The no-sync execution needs exactly g multiply-units: perfect
  // pipelining (the paper's idealized comparison point).
  EXPECT_DOUBLE_EQ(simulateNoSyncMakespan(g), static_cast<double>(g));
}

INSTANTIATE_TEST_SUITE_P(Grids, ScheduleInvariantsTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u));

TEST(SummaInstrumented, EngineMatchesSimulator) {
  // The real synchronized engine run must reproduce the simulated
  // schedule step for step.
  const std::uint32_t grid = 3;
  auto instr = std::make_shared<SummaInstrumentation>();
  Rng rng(7);
  BlockMatrix a(grid, 4);
  BlockMatrix b(grid, 4);
  a.fillRandom(rng);
  b.fillRandom(rng);
  auto store = kv::PartitionedStore::create(grid * grid);
  ebsp::Engine engine(store);
  SummaOptions options;
  options.synchronized = true;
  options.parts = grid * grid;
  options.instrumentation = instr;
  runSumma(engine, a, b, options);

  const SummaSchedule expected = simulateSummaSchedule(grid);
  const auto measured = instr->multsPerStep();
  ASSERT_EQ(measured.size(), expected.steps());
  for (std::size_t step = 1; step <= expected.steps(); ++step) {
    EXPECT_EQ(measured.at(static_cast<int>(step)),
              expected.multsPerStep[step - 1])
        << "step " << step;
  }
}

TEST(SummaVirtualTime, NoSyncBeatsSync) {
  // The §V-B result in shape: the no-sync virtual makespan must be
  // meaningfully smaller, bounded below by the 1x and above by the
  // schedule factor.
  // Blocks must be large enough that the O(b^3) multiply dominates the
  // O(b^2) state/message serialization, as in the paper's setup.
  const std::uint32_t grid = 3;
  Rng rng(9);
  BlockMatrix a(grid, 160);
  BlockMatrix b(grid, 160);
  a.fillRandom(rng);
  b.fillRandom(rng);

  auto runVariant = [&](bool synchronized) {
    auto store = kv::PartitionedStore::create(grid * grid);
    ebsp::Engine engine(store);
    SummaOptions options;
    options.synchronized = synchronized;
    options.parts = grid * grid;
    return runSumma(engine, a, b, options).job.virtualMakespan;
  };
  const double sync = runVariant(true);
  const double async = runVariant(false);
  EXPECT_GT(sync, async);
  // With real (noisy) measurements the ratio lands between 1 and ~7/3.
  EXPECT_LT(sync / async, 3.5);
  EXPECT_GT(sync / async, 1.1);
}

TEST(Summa, ShapeMismatchThrows) {
  BlockMatrix a(2, 8);
  BlockMatrix b(3, 8);
  auto store = kv::PartitionedStore::create(4);
  ebsp::Engine engine(store);
  SummaOptions options;
  EXPECT_THROW(runSumma(engine, a, b, options), std::invalid_argument);
}

TEST(Summa, FewerPartsThanComponentsStillCorrect) {
  // 3x3 grid on a 2-part table: multiple components share parts.
  const std::uint32_t grid = 3;
  Rng rng(11);
  BlockMatrix a(grid, 8);
  BlockMatrix b(grid, 8);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const BlockMatrix expected = BlockMatrix::multiplyReference(a, b);
  for (const bool synchronized : {true, false}) {
    auto store = kv::PartitionedStore::create(2);
    ebsp::Engine engine(store);
    SummaOptions options;
    options.synchronized = synchronized;
    options.parts = 2;
    const SummaResult r = runSumma(engine, a, b, options);
    EXPECT_TRUE(r.c.approxEqual(expected, 1e-9));
  }
}

}  // namespace
}  // namespace ripple::matrix
