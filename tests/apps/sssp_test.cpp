// Incremental SSSP (§V-C): both variants against BFS ground truth across
// randomized change batches, plus the selective/full cost asymmetry.

#include "apps/sssp.h"

#include <gtest/gtest.h>

#include "kvstore/partitioned_store.h"

namespace ripple::apps {
namespace {

graph::Graph undirectedGraph(std::size_t vertices, std::uint64_t edges,
                             std::uint64_t seed) {
  graph::PowerLawOptions options;
  options.vertices = vertices;
  options.edges = edges;
  options.undirected = true;
  options.seed = seed;
  return graph::generatePowerLaw(options);
}

void expectMatchesBfs(SsspDriver& driver, const graph::Graph& g,
                      graph::VertexId source, const char* what) {
  const auto expected = graph::bfsDistances(g, source);
  const auto measured = driver.distances(g.vertexCount());
  ASSERT_EQ(measured.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    const std::int32_t want =
        expected[v] < 0 ? kSsspInf : expected[v];
    EXPECT_EQ(measured[v], want) << what << ": vertex " << v;
  }
}

struct DriverSetup {
  std::shared_ptr<kv::PartitionedStore> store;
  std::unique_ptr<ebsp::Engine> engine;
  std::unique_ptr<SsspDriver> driver;
};

DriverSetup makeDriver(const graph::Graph& g, bool selective,
                       graph::VertexId source = 0) {
  DriverSetup setup;
  setup.store = kv::PartitionedStore::create(4);
  setup.engine = std::make_unique<ebsp::Engine>(setup.store);
  SsspOptions options;
  options.selective = selective;
  options.source = source;
  options.parts = 4;
  setup.driver = std::make_unique<SsspDriver>(*setup.engine, options);
  setup.driver->loadGraph(g);
  return setup;
}

class SsspVariantTest : public ::testing::TestWithParam<bool> {};

TEST_P(SsspVariantTest, InitialDistancesMatchBfs) {
  const graph::Graph g = undirectedGraph(300, 1200, 1);
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();
  expectMatchesBfs(*setup.driver, g, 0, "initial");
}

TEST_P(SsspVariantTest, DisconnectedComponentsStayAtInfinity) {
  graph::Graph g;
  g.adj.resize(10);
  auto addEdge = [&](graph::VertexId a, graph::VertexId b) {
    g.adj[a].push_back(b);
    g.adj[b].push_back(a);
  };
  addEdge(0, 1);
  addEdge(1, 2);
  addEdge(5, 6);  // Separate component.
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();
  const auto dist = setup.driver->distances(10);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[5], kSsspInf);
  EXPECT_EQ(dist[6], kSsspInf);
}

TEST_P(SsspVariantTest, EdgeAdditionShortensPaths) {
  graph::Graph g;
  g.adj.resize(6);
  auto addEdge = [&](graph::VertexId a, graph::VertexId b) {
    g.adj[a].push_back(b);
    g.adj[b].push_back(a);
  };
  // A line 0-1-2-3-4-5.
  for (graph::VertexId u = 0; u < 5; ++u) {
    addEdge(u, u + 1);
  }
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();

  std::vector<graph::GraphChange> batch{{true, 0, 5}};
  graph::applyChanges(g, batch);
  setup.driver->applyBatch(batch);
  expectMatchesBfs(*setup.driver, g, 0, "after addition");
  EXPECT_EQ(setup.driver->distances(6)[5], 1);
}

TEST_P(SsspVariantTest, EdgeDeletionLengthensPaths) {
  graph::Graph g;
  g.adj.resize(6);
  auto addEdge = [&](graph::VertexId a, graph::VertexId b) {
    g.adj[a].push_back(b);
    g.adj[b].push_back(a);
  };
  // A cycle 0-1-2-3-4-5-0.
  for (graph::VertexId u = 0; u < 6; ++u) {
    addEdge(u, (u + 1) % 6);
  }
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();
  EXPECT_EQ(setup.driver->distances(6)[5], 1);

  std::vector<graph::GraphChange> batch{{false, 0, 5}};
  graph::applyChanges(g, batch);
  setup.driver->applyBatch(batch);
  expectMatchesBfs(*setup.driver, g, 0, "after deletion");
  EXPECT_EQ(setup.driver->distances(6)[5], 5);
}

TEST_P(SsspVariantTest, DeletionCanDisconnect) {
  graph::Graph g;
  g.adj.resize(4);
  auto addEdge = [&](graph::VertexId a, graph::VertexId b) {
    g.adj[a].push_back(b);
    g.adj[b].push_back(a);
  };
  addEdge(0, 1);
  addEdge(1, 2);
  addEdge(2, 3);
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();

  std::vector<graph::GraphChange> batch{{false, 1, 2}};
  graph::applyChanges(g, batch);
  setup.driver->applyBatch(batch);
  const auto dist = setup.driver->distances(4);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kSsspInf);
  EXPECT_EQ(dist[3], kSsspInf);
}

TEST_P(SsspVariantTest, RandomizedBatchesTrackBfs) {
  graph::Graph g = undirectedGraph(200, 900, 17);
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();
  expectMatchesBfs(*setup.driver, g, 0, "initial");

  Rng rng(99);
  for (int batchNo = 0; batchNo < 6; ++batchNo) {
    const auto batch = graph::randomChangeBatch(200, 60, 1.8, rng);
    graph::applyChanges(g, batch);
    setup.driver->applyBatch(batch);
    expectMatchesBfs(*setup.driver, g, 0,
                     ("batch " + std::to_string(batchNo)).c_str());
  }
}

TEST_P(SsspVariantTest, NoOpBatchIsCheap) {
  graph::Graph g;
  g.adj.resize(4);
  g.adj[0].push_back(1);
  g.adj[1].push_back(0);
  DriverSetup setup = makeDriver(g, GetParam());
  setup.driver->initialize();
  // Removing a non-existent edge and re-adding an existing one: no-ops.
  std::vector<graph::GraphChange> batch{{false, 2, 3}, {true, 0, 1}};
  const SsspUpdateStats stats = setup.driver->applyBatch(batch);
  if (GetParam()) {
    EXPECT_EQ(stats.jobs, 0);  // Selective: nothing was effective.
  }
  expectMatchesBfs(*setup.driver, g, 0, "no-op batch");
}

INSTANTIATE_TEST_SUITE_P(Variants, SsspVariantTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Selective" : "FullScan";
                         });

TEST(SsspComparison, SelectiveDoesFarLessWork) {
  graph::Graph g = undirectedGraph(500, 3000, 23);
  DriverSetup selective = makeDriver(g, true);
  DriverSetup fullScan = makeDriver(g, false);
  selective.driver->initialize();
  fullScan.driver->initialize();

  Rng rng(7);
  const auto batch = graph::randomChangeBatch(500, 20, 1.8, rng);
  graph::Graph gCopy = g;
  graph::applyChanges(gCopy, batch);

  const SsspUpdateStats sel = selective.driver->applyBatch(batch);
  const SsspUpdateStats full = fullScan.driver->applyBatch(batch);

  // Identical answers...
  expectMatchesBfs(*selective.driver, gCopy, 0, "selective");
  expectMatchesBfs(*fullScan.driver, gCopy, 0, "full");
  // ...with selective enablement touching a small fraction of vertices.
  EXPECT_LT(sel.invocations * 5, full.invocations);
  EXPECT_LT(sel.messages * 5, full.messages);
}

TEST(SsspDriver, LoadGraphRequiredBeforeBatches) {
  auto store = kv::PartitionedStore::create(2);
  ebsp::Engine engine(store);
  SsspOptions options;
  SsspDriver driver(engine, options);
  EXPECT_THROW(driver.applyBatch({}), std::logic_error);
}

TEST(SsspDriver, NonZeroSource) {
  graph::Graph g = undirectedGraph(150, 600, 31);
  DriverSetup setup = makeDriver(g, true, /*source=*/42);
  setup.driver->initialize();
  expectMatchesBfs(*setup.driver, g, 42, "non-zero source");
}

}  // namespace
}  // namespace ripple::apps
