// PageRank (§V-A): both variants against the serial reference, the
// variants against each other, and the cost asymmetry the paper measures.

#include "apps/pagerank.h"

#include <gtest/gtest.h>

#include "kvstore/partitioned_store.h"

namespace ripple::apps {
namespace {

graph::Graph testGraph(std::size_t vertices, std::uint64_t edges,
                       std::uint64_t seed) {
  graph::PowerLawOptions options;
  options.vertices = vertices;
  options.edges = edges;
  options.seed = seed;
  return graph::generatePowerLaw(options);
}

PageRankResult runVariant(const graph::Graph& g, bool mapReduce,
                          int iterations, ebsp::JobResult* jobOut = nullptr) {
  auto store = kv::PartitionedStore::create(6);
  loadPageRankGraph(*store, "pr_graph", g, 6);
  ebsp::Engine engine(store);
  PageRankOptions options;
  options.iterations = iterations;
  options.mapReduceVariant = mapReduce;
  PageRankResult r = runPageRank(engine, options);
  if (jobOut != nullptr) {
    *jobOut = r.job;
  }
  return r;
}

std::vector<double> ranksOf(const graph::Graph& g, bool mapReduce,
                            int iterations) {
  auto store = kv::PartitionedStore::create(6);
  loadPageRankGraph(*store, "pr_graph", g, 6);
  ebsp::Engine engine(store);
  PageRankOptions options;
  options.iterations = iterations;
  options.mapReduceVariant = mapReduce;
  runPageRank(engine, options);
  return readRanks(*store, "pr_graph", g.vertexCount());
}

TEST(PrRecordCodec, Roundtrip) {
  PrRecord plain;
  plain.edges = {1, 2, 3};
  const PrRecord p = decodeFromBytes<PrRecord>(encodeToBytes(plain));
  EXPECT_FALSE(p.ranked);
  EXPECT_EQ(p.edges, plain.edges);

  PrRecord enhanced;
  enhanced.edges = {7};
  enhanced.ranked = true;
  enhanced.rank = 0.125;
  const PrRecord e = decodeFromBytes<PrRecord>(encodeToBytes(enhanced));
  EXPECT_TRUE(e.ranked);
  EXPECT_DOUBLE_EQ(e.rank, 0.125);
}

TEST(ReferencePageRank, RanksSumToOne) {
  const graph::Graph g = testGraph(500, 3000, 1);
  const auto ranks = referencePageRank(g, 0.85, 15);
  double sum = 0;
  for (const double r : ranks) {
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

class VariantTest : public ::testing::TestWithParam<bool> {};

TEST_P(VariantTest, MatchesSerialReference) {
  const bool mapReduce = GetParam();
  const graph::Graph g = testGraph(400, 2500, 5);
  const auto expected = referencePageRank(g, 0.85, 8);
  const auto measured = ranksOf(g, mapReduce, 8);
  ASSERT_EQ(measured.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(measured[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(VariantTest, RankSumIsOne) {
  const bool mapReduce = GetParam();
  const graph::Graph g = testGraph(300, 1500, 6);
  const PageRankResult r = runVariant(g, mapReduce, 10);
  EXPECT_NEAR(r.rankSum, 1.0, 1e-9);
}

TEST_P(VariantTest, HandlesDanglingOnlyGraph) {
  // A graph with NO edges: every vertex is a sink; ranks stay uniform.
  graph::Graph g;
  g.adj.resize(50);
  const auto ranks = ranksOf(g, GetParam(), 5);
  for (const double r : ranks) {
    EXPECT_NEAR(r, 1.0 / 50, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MapReduce" : "Direct";
                         });

TEST(PageRankVariants, ProduceIdenticalRanks) {
  // "The MapReduce variant is purely inferior ... doing strictly more
  // work" — but the answers must agree.
  const graph::Graph g = testGraph(600, 4000, 9);
  const auto direct = ranksOf(g, false, 12);
  const auto mapred = ranksOf(g, true, 12);
  for (std::size_t v = 0; v < direct.size(); ++v) {
    EXPECT_NEAR(direct[v], mapred[v], 1e-9);
  }
}

TEST(PageRankVariants, CostAsymmetryMatchesPaper) {
  const graph::Graph g = testGraph(500, 4000, 12);
  ebsp::JobResult direct;
  ebsp::JobResult mapred;
  runVariant(g, false, 10, &direct);
  runVariant(g, true, 10, &mapred);

  // Two synchronizations per iteration vs one (plus the direct variant's
  // single initial scan step).
  EXPECT_EQ(direct.steps, 11);
  EXPECT_EQ(mapred.steps, 20);

  // The MapReduce variant does an extra round of state-table I/O per
  // iteration; the direct variant touches state only at the start/end.
  EXPECT_GT(mapred.metrics.stateWrites, 5 * direct.metrics.stateWrites);
  EXPECT_GT(mapred.metrics.stateReads, 5 * direct.metrics.stateReads);
  EXPECT_GT(mapred.metrics.barriers, direct.metrics.barriers);
}

TEST(PageRank, MissingGraphTableThrows) {
  auto store = kv::PartitionedStore::create(2);
  ebsp::Engine engine(store);
  PageRankOptions options;
  EXPECT_THROW(runPageRank(engine, options), std::invalid_argument);
}

TEST(PageRank, SingleIteration) {
  const graph::Graph g = testGraph(100, 500, 3);
  const auto expected = referencePageRank(g, 0.85, 1);
  const auto measured = ranksOf(g, false, 1);
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(measured[v], expected[v], 1e-12);
  }
}

}  // namespace
}  // namespace ripple::apps
