// The MapReduce layer (Fig. 2) compiled onto K/V EBSP.

#include "mapreduce/mapreduce.h"

#include <gtest/gtest.h>

#include "kvstore/partitioned_store.h"
#include "mapreduce/iterated.h"

namespace ripple::mr {
namespace {

std::shared_ptr<kv::PartitionedStore> newStore() {
  return kv::PartitionedStore::create(4);
}

TEST(MapReduce, WordCountEndToEnd) {
  auto store = newStore();
  kv::TableOptions options;
  options.parts = 4;
  kv::TypedTable<std::string, std::string> input(
      store->createTable("in", std::move(options)));
  input.put("d1", "a b a c");
  input.put("d2", "b a");
  input.put("d3", "A, a; B!");

  ebsp::Engine engine(store);
  auto spec = wordCountSpec("in", "out");
  const MapReduceResult r = runMapReduce(engine, spec);

  kv::TypedTable<std::string, std::uint64_t> output(
      store->lookupTable("out"));
  EXPECT_EQ(output.get("a"), 5u);
  EXPECT_EQ(output.get("b"), 3u);
  EXPECT_EQ(output.get("c"), 1u);
  EXPECT_EQ(r.outputPairs, 3u);
  // Two steps: map-like and reduce-like.
  EXPECT_EQ(r.job.steps, 2);
}

TEST(MapReduce, MissingInputTableThrows) {
  auto store = newStore();
  ebsp::Engine engine(store);
  auto spec = wordCountSpec("nope", "out");
  EXPECT_THROW(runMapReduce(engine, spec), std::invalid_argument);
}

TEST(MapReduce, CombinerReducesShuffleVolume) {
  auto store = newStore();
  kv::TableOptions options;
  options.parts = 4;
  kv::TypedTable<std::string, std::string> input(
      store->createTable("in", std::move(options)));
  std::string manyAs;
  for (int i = 0; i < 50; ++i) {
    manyAs += "a ";
  }
  input.put("d", manyAs);

  ebsp::Engine engine(store);
  auto withCombiner = wordCountSpec("in", "out1");
  const MapReduceResult r1 = runMapReduce(engine, withCombiner);
  auto withoutCombiner = wordCountSpec("in", "out2");
  withoutCombiner.combiner = nullptr;
  const MapReduceResult r2 = runMapReduce(engine, withoutCombiner);

  // Same answer, fewer combined messages in flight.
  kv::TypedTable<std::string, std::uint64_t> out1(store->lookupTable("out1"));
  kv::TypedTable<std::string, std::uint64_t> out2(store->lookupTable("out2"));
  EXPECT_EQ(out1.get("a"), 50u);
  EXPECT_EQ(out2.get("a"), 50u);
  EXPECT_GT(r1.job.metrics.combinerCalls, 0u);
  EXPECT_EQ(r2.job.metrics.combinerCalls, 0u);
}

TEST(MapReduce, ExporterReceivesOutput) {
  auto store = newStore();
  kv::TableOptions options;
  options.parts = 2;
  kv::TypedTable<std::string, std::string> input(
      store->createTable("in", std::move(options)));
  input.put("d", "x y");

  auto collector = std::make_shared<ebsp::CollectingExporter>();
  ebsp::Engine engine(store);
  auto spec = wordCountSpec("in", /*outputTable=*/"");
  spec.exporter = collector;
  runMapReduce(engine, spec);
  EXPECT_EQ(collector->count(), 2u);
  // No output table was created.
  EXPECT_EQ(store->lookupTable(""), nullptr);
}

TEST(MapReduce, NumericAggregationJob) {
  // Group integers by parity, sum each group.
  auto store = newStore();
  kv::TableOptions options;
  options.parts = 4;
  kv::TypedTable<int, int> input(store->createTable("nums", std::move(options)));
  for (int i = 1; i <= 100; ++i) {
    input.put(i, i);
  }

  MapReduceSpec<int, int, int, std::int64_t, int, std::int64_t> spec;
  spec.inputTable = "nums";
  spec.outputTable = "sums";
  spec.mapper = [](const int&, const int& v, const auto& emit) {
    emit(v % 2, v);
  };
  spec.combiner = [](const int&, std::int64_t a, std::int64_t b) {
    return a + b;
  };
  spec.reducer = [](const int& parity, const std::vector<std::int64_t>& vs,
                    const auto& emit) {
    std::int64_t total = 0;
    for (const auto v : vs) {
      total += v;
    }
    emit(parity, total);
  };
  ebsp::Engine engine(store);
  runMapReduce(engine, spec);
  kv::TypedTable<int, std::int64_t> sums(store->lookupTable("sums"));
  EXPECT_EQ(sums.get(0), 2550);  // 2+4+...+100
  EXPECT_EQ(sums.get(1), 2500);  // 1+3+...+99
}

TEST(IteratedMapReduce, ConvergesAndCleansUpIntermediates) {
  // Iteratively halve values until everything is below 2.
  auto store = newStore();
  kv::TableOptions options;
  options.parts = 4;
  kv::TypedTable<int, std::int64_t> input(
      store->createTable("vals", std::move(options)));
  for (int i = 0; i < 16; ++i) {
    input.put(i, 64);
  }

  using Spec = MapReduceSpec<int, std::int64_t, int, std::int64_t, int,
                             std::int64_t>;
  ebsp::Engine engine(store);
  std::atomic<std::int64_t> maxSeen{0};
  const IterationStats stats = runIterated<int, std::int64_t, int,
                                           std::int64_t, int, std::int64_t>(
      engine,
      [&](int, const std::string&, const std::string&) {
        Spec spec;
        spec.mapper = [](const int& k, const std::int64_t& v,
                         const auto& emit) { emit(k, v / 2); };
        spec.reducer = [&](const int& k, const std::vector<std::int64_t>& vs,
                           const auto& emit) {
          emit(k, vs.at(0));
          std::int64_t prev = maxSeen.load();
          while (vs[0] > prev &&
                 !maxSeen.compare_exchange_weak(prev, vs[0])) {
          }
        };
        return spec;
      },
      "vals", /*maxIterations=*/20,
      [&](int, const MapReduceResult&) {
        const std::int64_t m = maxSeen.exchange(0);
        return m < 2;
      });
  // 64 -> 32 -> 16 -> 8 -> 4 -> 2 -> 1: six iterations.
  EXPECT_EQ(stats.iterations, 6);
  EXPECT_EQ(stats.totalSteps, 12u);  // Two per iteration.
  kv::TypedTable<int, std::int64_t> out(store->lookupTable("vals__iter6"));
  EXPECT_EQ(out.get(3), 1);
  // Intermediate tables were dropped.
  EXPECT_EQ(store->lookupTable("vals__iter3"), nullptr);
  // Original input untouched.
  EXPECT_EQ(input.get(3), 64);
}

}  // namespace
}  // namespace ripple::mr
