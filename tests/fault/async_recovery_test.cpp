// No-sync worker-failure recovery: a worker killed mid-drain is
// abandoned, its queue is re-dispatched to a survivor (front-popped, so
// per-(sender, queue) FIFO holds), termination detection still completes,
// and the results are exactly what a fault-free run produces.

#include <gtest/gtest.h>

#include <atomic>

#include "common/codec.h"
#include "ebsp/async_engine.h"
#include "ebsp/library.h"
#include "fault/fault.h"
#include "fault/faulty_queue.h"
#include "fault/faulty_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"
#include "mq/queue.h"
#include "obs/metrics.h"

namespace ripple::ebsp {
namespace {

constexpr std::uint32_t kParts = 4;

JobProperties noSyncProps() {
  JobProperties p;
  p.oneMsg = true;
  p.noContinue = true;
  p.noSsOrder = true;
  return p;
}

/// Fan-out tree: each message below `depth` spawns two children; every
/// invocation adds its payload into per-key state.  The state sum over
/// all keys is a deterministic function of the tree, so lost or
/// double-delivered messages are both visible.
RawJob fanOutJob(std::int64_t depth) {
  RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.properties = noSyncProps();
  job.compute.compute = [depth](RawComputeContext& ctx) {
    const auto d = decodeFromBytes<std::int64_t>(ctx.inputMessages()[0]);
    const auto prev = ctx.readState(0);
    const std::int64_t count =
        prev ? decodeFromBytes<std::int64_t>(*prev) + 1 : 1;
    ctx.writeState(0, encodeToBytes(count));
    if (d < depth) {
      ctx.outputMessage(Bytes(ctx.key()) + "L", encodeToBytes(d + 1));
      ctx.outputMessage(Bytes(ctx.key()) + "R", encodeToBytes(d + 1));
    }
    return false;
  };
  auto loader = std::make_shared<VectorLoader>();
  loader->message("root", encodeToBytes<std::int64_t>(0));
  job.loaders = {loader};
  return job;
}

struct RunOutcome {
  JobResult result;
  std::uint64_t stateEntries = 0;
  std::uint64_t invocationSum = 0;
};

RunOutcome runFanOut(std::int64_t depth, const fault::FaultPlan& plan,
                     fault::RetryPolicy retry,
                     fault::FaultInjectorPtr* injectorOut = nullptr,
                     obs::MetricsRegistry* registry = nullptr) {
  auto injector = std::make_shared<fault::FaultInjector>(plan);
  if (registry != nullptr) {
    injector->bindRegistry(*registry);
  }
  auto store = fault::FaultyStore::wrap(kv::PartitionedStore::create(kParts),
                                        injector);
  kv::TableOptions options;
  options.parts = kParts;
  store->createTable("ref", std::move(options));

  RawJob job = fanOutJob(depth);
  AsyncEngineOptions engineOptions;
  engineOptions.queuing =
      fault::FaultyQueuing::wrap(mq::makeMemQueuing(store), injector);
  engineOptions.retry = retry;
  engineOptions.metrics = registry;
  AsyncEngine engine(store, engineOptions);

  RunOutcome out;
  out.result = engine.run(job);
  auto all = kv::readAll(*store->lookupTable("ref"));
  out.stateEntries = all.size();
  for (auto& [k, v] : all) {
    out.invocationSum += static_cast<std::uint64_t>(
        decodeFromBytes<std::int64_t>(v));
  }
  if (injectorOut != nullptr) {
    *injectorOut = injector;
  }
  return out;
}

fault::RetryPolicy testPolicy(int maxAttempts = 6) {
  fault::RetryPolicy policy;
  policy.maxAttempts = maxAttempts;
  policy.sleepWallClock = false;
  return policy;
}

// A full binary tree of depth 12: 2^13 - 1 invocations, one per node.
constexpr std::int64_t kDepth = 12;
constexpr std::uint64_t kExpectedInvocations = (1u << (kDepth + 1)) - 1;

TEST(AsyncRecovery, SurvivesMidDrainWorkerKills) {
  // Kill rule: the 40th dequeue on each queue kills the reader, at most
  // kParts - 2 times total, so the sole-survivor rule is never reached.
  fault::FaultRule kill;
  kill.ops = maskOf(fault::Op::kDequeue);
  kill.nth = 40;
  kill.action = fault::Action::kKillWorker;
  kill.maxInjections = kParts - 2;
  fault::FaultPlan plan;
  plan.rules.push_back(kill);

  fault::FaultInjectorPtr injector;
  obs::MetricsRegistry registry;
  const RunOutcome out =
      runFanOut(kDepth, plan, testPolicy(), &injector, &registry);

  // No message lost, none double-applied, despite the takeovers.
  EXPECT_EQ(out.result.metrics.computeInvocations, kExpectedInvocations);
  EXPECT_EQ(out.invocationSum, kExpectedInvocations);
  EXPECT_EQ(out.stateEntries, kExpectedInvocations);

  // Every injected kill abandoned exactly one worker.
  EXPECT_EQ(injector->injectedKills(),
            static_cast<std::uint64_t>(kParts - 2));
  EXPECT_EQ(out.result.metrics.recoveries, injector->injectedKills());
  EXPECT_EQ(registry.snapshot().counters.at("ebsp.recoveries"),
            injector->injectedKills());
}

TEST(AsyncRecovery, SoleSurvivorIgnoresKills) {
  // Unbounded kills: workers die until one remains, which shrugs off
  // further kills and finishes the drain alone.
  fault::FaultRule kill;
  kill.ops = maskOf(fault::Op::kDequeue);
  kill.nth = 25;
  kill.action = fault::Action::kKillWorker;
  fault::FaultPlan plan;
  plan.rules.push_back(kill);

  fault::FaultInjectorPtr injector;
  const RunOutcome out = runFanOut(kDepth, plan, testPolicy(), &injector);
  EXPECT_EQ(out.result.metrics.computeInvocations, kExpectedInvocations);
  EXPECT_EQ(out.invocationSum, kExpectedInvocations);
  // At most kParts - 1 workers can actually be abandoned.
  EXPECT_LE(out.result.metrics.recoveries,
            static_cast<std::uint64_t>(kParts - 1));
  EXPECT_GE(out.result.metrics.recoveries, 1u);
}

TEST(AsyncRecovery, TransientDequeueFailuresAreAbsorbed) {
  fault::FaultPlan plan = fault::FaultPlan::queueChaos(/*seed=*/7, 0.01);
  fault::FaultInjectorPtr injector;
  obs::MetricsRegistry registry;
  const RunOutcome out =
      runFanOut(kDepth, plan, testPolicy(8), &injector, &registry);
  EXPECT_EQ(out.result.metrics.computeInvocations, kExpectedInvocations);
  EXPECT_EQ(out.invocationSum, kExpectedInvocations);
  EXPECT_GT(injector->injectedFailures(), 0u);
  // Every injected failure was caught by exactly one retrier.
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("fault.injected_failures"),
            snap.counters.at("fault.retries") +
                snap.counters.at("fault.escalations"));
}

TEST(AsyncRecovery, ExhaustedDequeueBudgetAbandonsTheWorker) {
  // Fail every dequeue on queue 2: its worker burns the whole retry
  // budget, is treated as dead, and a survivor adopts the queue.  The
  // adopter's tryReadFrom polls are injected at part 2 as well, so cap
  // total injections to keep the adopted queue drainable.
  fault::FaultRule rule;
  rule.ops = maskOf(fault::Op::kDequeue);
  rule.part = 2;
  rule.nth = 1;
  rule.maxInjections = 3;  // Exactly one budget (maxAttempts = 3).
  fault::FaultPlan plan;
  plan.rules.push_back(rule);

  fault::FaultInjectorPtr injector;
  const RunOutcome out = runFanOut(kDepth, plan, testPolicy(3), &injector);
  EXPECT_EQ(out.result.metrics.computeInvocations, kExpectedInvocations);
  EXPECT_EQ(out.invocationSum, kExpectedInvocations);
  EXPECT_EQ(out.result.metrics.recoveries, 1u);
}

TEST(AsyncRecovery, OnBarrierHookIsRejectedNotIgnored) {
  auto store = kv::PartitionedStore::create(kParts);
  kv::TableOptions options;
  options.parts = kParts;
  store->createTable("ref", std::move(options));
  RawJob job = fanOutJob(2);
  AsyncEngineOptions engineOptions;
  engineOptions.queuing = mq::makeMemQueuing(store);
  engineOptions.onBarrier = [](int) {};
  AsyncEngine engine(store, engineOptions);
  EXPECT_THROW(engine.run(job), std::invalid_argument);
}

}  // namespace
}  // namespace ripple::ebsp
