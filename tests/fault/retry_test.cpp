// Retrier semantics: bounded absorption, escalation, deterministic
// backoff, counter mirroring, and virtual-time charging.

#include "fault/retry.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/virtual_time.h"

namespace ripple::fault {
namespace {

RetryPolicy quickPolicy(int maxAttempts = 4) {
  RetryPolicy policy;
  policy.maxAttempts = maxAttempts;
  policy.sleepWallClock = false;  // Counters only; no real sleeping.
  return policy;
}

/// Callable failing the first `failures` invocations.
struct Flaky {
  int failures;
  int calls = 0;
  int operator()() {
    if (++calls <= failures) {
      throw TransientStoreError("flaky");
    }
    return calls;
  }
};

TEST(Retrier, PassesThroughOnSuccess) {
  Retrier retry(quickPolicy());
  EXPECT_EQ(retry([] { return 7; }), 7);
  EXPECT_EQ(retry.retries(), 0u);
}

TEST(Retrier, AbsorbsFailuresWithinBudget) {
  Retrier retry(quickPolicy(4));
  Flaky flaky{2};
  EXPECT_EQ(retry([&] { return flaky(); }), 3);
  EXPECT_EQ(retry.retries(), 2u);
  EXPECT_EQ(retry.escalations(), 0u);
  EXPECT_GT(retry.backoffMsTotal(), 0.0);
}

TEST(Retrier, EscalatesWhenBudgetExhausted) {
  Retrier retry(quickPolicy(3));
  int calls = 0;
  EXPECT_THROW(retry([&]() -> int {
    ++calls;
    throw TransientQueueError("always");
  }),
               TransientQueueError);
  EXPECT_EQ(calls, 3);  // maxAttempts includes the first try.
  EXPECT_EQ(retry.retries(), 2u);
  EXPECT_EQ(retry.escalations(), 1u);
}

TEST(Retrier, DoesNotCatchNonTransientErrors) {
  Retrier retry(quickPolicy());
  int calls = 0;
  EXPECT_THROW(retry([&] {
    ++calls;
    throw std::logic_error("bug");
  }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retry.retries(), 0u);
}

TEST(Retrier, WorkerKilledPropagatesImmediately) {
  // A kill is NOT transient: the reader is gone, not slow.
  Retrier retry(quickPolicy());
  int calls = 0;
  EXPECT_THROW(retry([&] {
    ++calls;
    throw WorkerKilled("killed");
  }),
               WorkerKilled);
  EXPECT_EQ(calls, 1);
}

TEST(Retrier, BackoffIsDeterministicPerStream) {
  auto drive = [](Retrier& retry) {
    for (int round = 0; round < 5; ++round) {
      Flaky flaky{3};
      retry([&] { return flaky(); });
    }
    return retry.backoffMsTotal();
  };
  RetryPolicy policy = quickPolicy(8);
  policy.seed = 17;
  Retrier a(policy, /*streamId=*/3);
  Retrier b(policy, /*streamId=*/3);
  Retrier c(policy, /*streamId=*/4);
  const double msA = drive(a);
  EXPECT_EQ(msA, drive(b));         // Same seed + stream => same schedule.
  EXPECT_NE(msA, drive(c));         // Another stream jitters differently.
  EXPECT_GT(msA, 0.0);
}

TEST(Retrier, BackoffGrowsAndIsCapped) {
  RetryPolicy policy = quickPolicy(10);
  policy.initialBackoffMs = 1.0;
  policy.backoffMultiplier = 2.0;
  policy.maxBackoffMs = 3.0;
  policy.jitter = 0;  // Exact schedule: 1, 2, 3, 3, ...
  Retrier retry(policy);
  Flaky flaky{5};
  retry([&] { return flaky(); });
  EXPECT_DOUBLE_EQ(retry.backoffMsTotal(), 1.0 + 2.0 + 3.0 + 3.0 + 3.0);
}

TEST(Retrier, JitteredBackoffNeverExceedsCap) {
  // maxBackoffMs is a HARD bound applied after jitter.  The pre-fix code
  // clamped before jittering, so jitter=1.0 could double the capped wait
  // and the documented escalation-latency bound did not hold.
  RetryPolicy policy = quickPolicy(64);
  policy.initialBackoffMs = 5.0;  // Start at the cap...
  policy.maxBackoffMs = 5.0;
  policy.jitter = 1.0;  // ...so any upward jitter would exceed it.
  Retrier retry(policy);
  Flaky flaky{63};
  retry([&] { return flaky(); });
  ASSERT_EQ(retry.retries(), 63u);
  EXPECT_LE(retry.backoffMsTotal(),
            static_cast<double>(retry.retries()) * policy.maxBackoffMs);
  EXPECT_GT(retry.backoffMsTotal(), 0.0);
}

TEST(Retrier, MirrorsCountersIntoRegistry) {
  obs::MetricsRegistry registry;
  RetryPolicy policy = quickPolicy(2);
  policy.initialBackoffMs = 1.0;
  Retrier retry(policy);
  retry.bindRegistry(&registry);
  Flaky flaky{1};
  retry([&] { return flaky(); });
  EXPECT_THROW(retry([]() -> int { throw TransientStoreError("x"); }),
               TransientStoreError);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("fault.retries"), 2u);
  EXPECT_EQ(snap.counters.at("fault.escalations"), 1u);
  EXPECT_GE(snap.counters.at("fault.backoff_ms"), 2u);  // ceil per backoff.
}

TEST(Retrier, ChargesBackoffToVirtualTime) {
  sim::VirtualCluster vt(2, sim::CostModel::defaults());
  RetryPolicy policy = quickPolicy(4);
  policy.initialBackoffMs = 10.0;
  policy.maxBackoffMs = 100.0;  // Don't cap the 10ms/20ms schedule.
  policy.jitter = 0;
  Retrier retry(policy);
  retry.bindVirtualTime(&vt, /*part=*/1);
  Flaky flaky{2};
  retry([&] { return flaky(); });
  // 10ms + 20ms of backoff charged to part 1's clock, none to part 0.
  EXPECT_NEAR(vt.now(1), 0.030, 1e-9);
  EXPECT_DOUBLE_EQ(vt.now(0), 0.0);
}

}  // namespace
}  // namespace ripple::fault
