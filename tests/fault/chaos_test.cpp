// Chaos capstone (ISSUE: ripple::fault): PageRank, SSSP, and SUMMA run
// under randomized-but-seeded fault schedules at several intensities, on
// both execution strategies where eligible, and must produce results
// identical to a fault-free baseline.  The counter ledger is asserted on
// every run: each injected failure is caught by exactly one retrier
// (fault.injected_failures == fault.retries + fault.escalations).

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/codec.h"
#include "ebsp/engine.h"
#include "ebsp/library.h"
#include "fault/fault.h"
#include "fault/faulty_queue.h"
#include "fault/faulty_store.h"
#include "kvstore/local_store.h"
#include "kvstore/log_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"
#include "matrix/summa.h"
#include "mq/queue.h"
#include "obs/report.h"

namespace ripple::fault {
namespace {

constexpr std::uint64_t kSeeds[] = {11, 22, 33};

RetryPolicy chaosRetry(int maxAttempts = 8) {
  RetryPolicy policy;
  policy.maxAttempts = maxAttempts;
  policy.sleepWallClock = false;  // Virtual time still charged.
  return policy;
}

/// Asserts the per-run counter ledger and that faults actually fired.
void expectLedger(const obs::MetricsRegistry& registry,
                  const FaultInjector& injector) {
  const obs::RunReport report =
      obs::RunReport::capture("chaos", &registry, nullptr);
  const auto& counters = report.metrics.counters;
  EXPECT_GT(counters.at("fault.injected"), 0u);
  EXPECT_EQ(counters.at("fault.injected"), injector.injected());
  // Every injected failure was caught by exactly one retrier: absorbed
  // (fault.retries) or escalated to engine-level recovery.
  EXPECT_EQ(counters.at("fault.injected_failures"),
            counters.at("fault.retries") + counters.at("fault.escalations"));
}

// ---------------------------------------------------------------------
// PageRank — synchronized, absorb-only store chaos at two intensities.
// ---------------------------------------------------------------------

graph::Graph prGraph() {
  graph::PowerLawOptions options;
  options.vertices = 300;
  options.edges = 1800;
  options.seed = 9;
  return graph::generatePowerLaw(options);
}

std::vector<double> runPageRankChaos(const graph::Graph& g,
                                     const FaultPlan& plan,
                                     const RetryPolicy& retry,
                                     bool checkpoint,
                                     FaultInjectorPtr* injectorOut,
                                     obs::MetricsRegistry* registry,
                                     kv::KVStorePtr baseStore = nullptr) {
  auto injector = std::make_shared<FaultInjector>(plan);
  if (registry != nullptr) {
    injector->bindRegistry(*registry);
  }
  injector->setArmed(false);  // Setup and result readback run fault-free.
  if (baseStore == nullptr) {
    baseStore = kv::PartitionedStore::create(6);
  }
  auto store = FaultyStore::wrap(std::move(baseStore), injector);
  apps::loadPageRankGraph(*store, "pr_graph", g, 6);

  ebsp::EngineOptions engineOptions;
  engineOptions.retry = retry;
  engineOptions.metrics = registry;
  if (checkpoint) {
    engineOptions.checkpoint.enabled = true;
    engineOptions.checkpoint.interval = 1;
  }
  ebsp::Engine engine(store, engineOptions);
  apps::PageRankOptions options;
  options.iterations = 6;

  injector->setArmed(true);
  apps::runPageRank(engine, options);
  injector->setArmed(false);

  if (injectorOut != nullptr) {
    *injectorOut = injector;
  }
  return apps::readRanks(*store, "pr_graph", g.vertexCount());
}

void expectSameRanks(const std::vector<double>& a,
                     const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Identical up to FP combine order (which the engine does not pin
    // even fault-free: spill arrival order varies across threads).
    EXPECT_NEAR(a[i], b[i], 1e-12) << "vertex " << i;
  }
}

TEST(Chaos, PageRankSyncAbsorbsStoreFaults) {
  const graph::Graph g = prGraph();
  const std::vector<double> baseline =
      runPageRankChaos(g, FaultPlan{}, chaosRetry(), /*checkpoint=*/false,
                       nullptr, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    for (const double intensity : {0.001, 0.01}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " p=" + std::to_string(intensity));
      FaultInjectorPtr injector;
      obs::MetricsRegistry registry;
      const auto ranks =
          runPageRankChaos(g, FaultPlan::storeChaos(seed, intensity),
                           chaosRetry(), /*checkpoint=*/false, &injector,
                           &registry);
      expectSameRanks(ranks, baseline);
      expectLedger(registry, *injector);
      EXPECT_EQ(injector->injectedKills(), 0u);
    }
  }
}

TEST(Chaos, PageRankSyncRecoversFromEscalations) {
  // Deterministic drain failures with NO retry budget: each firing
  // escalates straight to checkpoint recovery.
  const graph::Graph g = prGraph();
  const std::vector<double> baseline =
      runPageRankChaos(g, FaultPlan{}, chaosRetry(), /*checkpoint=*/false,
                       nullptr, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultRule rule;
    rule.ops = maskOf(Op::kDrain);
    rule.tableSubstring = "__ebsp_tr_";  // Transport drains only.
    rule.nth = 4;
    rule.maxInjections = 2;
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(rule);

    FaultInjectorPtr injector;
    obs::MetricsRegistry registry;
    const auto ranks = runPageRankChaos(g, plan, chaosRetry(/*max=*/1),
                                        /*checkpoint=*/true, &injector,
                                        &registry);
    expectSameRanks(ranks, baseline);
    expectLedger(registry, *injector);
    const auto counters = registry.snapshot().counters;
    EXPECT_GE(counters.at("ebsp.recoveries"), 1u);
    EXPECT_EQ(counters.at("fault.escalations"), injector->injectedFailures());
  }
}

// ---------------------------------------------------------------------
// The same seeded schedules over the durable log backend: chaos must be
// just as invisible when every mutation also rides the log-structured
// write buffers (the ephemeral-path LogStore — the chaos here targets
// the store API, durability epochs are exercised by the recovery wall
// in tests/kvstore/log_store_recovery_test.cpp).
// ---------------------------------------------------------------------

TEST(Chaos, PageRankLogStoreAbsorbsStoreFaults) {
  const graph::Graph g = prGraph();
  const std::vector<double> baseline =
      runPageRankChaos(g, FaultPlan{}, chaosRetry(), /*checkpoint=*/false,
                       nullptr, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultInjectorPtr injector;
    obs::MetricsRegistry registry;
    const auto ranks = runPageRankChaos(
        g, FaultPlan::storeChaos(seed, 0.005), chaosRetry(),
        /*checkpoint=*/false, &injector, &registry,
        kv::LogStore::open(kv::LogStore::Options{}));
    expectSameRanks(ranks, baseline);
    expectLedger(registry, *injector);
    EXPECT_EQ(injector->injectedKills(), 0u);
  }
}

TEST(Chaos, PageRankLogStoreRecoversFromEscalations) {
  const graph::Graph g = prGraph();
  const std::vector<double> baseline =
      runPageRankChaos(g, FaultPlan{}, chaosRetry(), /*checkpoint=*/false,
                       nullptr, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultRule rule;
    rule.ops = maskOf(Op::kDrain);
    rule.tableSubstring = "__ebsp_tr_";  // Transport drains only.
    rule.nth = 4;
    // ONE injection, unlike the partitioned leg's two: LogStore runs
    // parts sequentially, so the sibling parts' pending nth-ordinals
    // survive the failed step and would fire inside recover()'s
    // transport clears (clearPart counts as a drain op), where a second
    // escalation is unrecoverable by design.
    rule.maxInjections = 1;
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(rule);

    FaultInjectorPtr injector;
    obs::MetricsRegistry registry;
    const auto ranks = runPageRankChaos(
        g, plan, chaosRetry(/*max=*/1), /*checkpoint=*/true, &injector,
        &registry, kv::LogStore::open(kv::LogStore::Options{}));
    expectSameRanks(ranks, baseline);
    expectLedger(registry, *injector);
    const auto counters = registry.snapshot().counters;
    EXPECT_GE(counters.at("ebsp.recoveries"), 1u);
  }
}

// ---------------------------------------------------------------------
// SSSP — synchronized (the driver's jobs use aggregators, so no-sync is
// not eligible); integer distances make "identical" exact.
// ---------------------------------------------------------------------

TEST(Chaos, SsspSyncAbsorbsStoreFaults) {
  graph::PowerLawOptions graphOptions;
  graphOptions.vertices = 250;
  graphOptions.edges = 1200;
  graphOptions.seed = 4;
  const graph::Graph g = graph::generatePowerLaw(graphOptions);

  auto run = [&](const FaultPlan& plan, FaultInjectorPtr* injectorOut,
                 obs::MetricsRegistry* registry) {
    auto injector = std::make_shared<FaultInjector>(plan);
    if (registry != nullptr) {
      injector->bindRegistry(*registry);
    }
    injector->setArmed(false);
    auto store =
        FaultyStore::wrap(kv::PartitionedStore::create(6), injector);
    ebsp::EngineOptions engineOptions;
    engineOptions.retry = chaosRetry();
    engineOptions.metrics = registry;
    ebsp::Engine engine(store, engineOptions);
    apps::SsspOptions options;
    options.parts = 6;
    apps::SsspDriver driver(engine, options);
    driver.loadGraph(g);
    injector->setArmed(true);
    driver.initialize();
    injector->setArmed(false);
    if (injectorOut != nullptr) {
      *injectorOut = injector;
    }
    return driver.distances(g.vertexCount());
  };

  const std::vector<std::int32_t> baseline = run(FaultPlan{}, nullptr,
                                                 nullptr);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultInjectorPtr injector;
    obs::MetricsRegistry registry;
    const auto distances =
        run(FaultPlan::storeChaos(seed, 0.005), &injector, &registry);
    EXPECT_EQ(distances, baseline);  // Exact: integer annotations.
    expectLedger(registry, *injector);
  }
}

// ---------------------------------------------------------------------
// SUMMA — the one workload eligible for BOTH strategies (incremental);
// the no-sync runs add queue chaos on top of store chaos.
// ---------------------------------------------------------------------

TEST(Chaos, SummaBothStrategiesUnderStoreAndQueueFaults) {
  constexpr std::uint32_t kGrid = 3;
  constexpr std::size_t kBlock = 8;
  Rng rng(77);
  matrix::BlockMatrix a(kGrid, kBlock);
  matrix::BlockMatrix b(kGrid, kBlock);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const matrix::BlockMatrix expected =
      matrix::BlockMatrix::multiplyReference(a, b);

  for (const bool synchronized : {true, false}) {
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE(std::string(synchronized ? "sync" : "no-sync") +
                   " seed=" + std::to_string(seed));
      // Store chaos is scoped to the engine's internal __ebsp tables:
      // runSumma reads the result blocks back with raw gets on the state
      // table, which run outside any retry scope by design.
      FaultPlan plan = FaultPlan::storeChaos(seed, 0.02, "__ebsp");
      if (!synchronized) {
        // No-sync runs move everything through queues, not the transport
        // tables: add probabilistic queue chaos plus a deterministic
        // every-4th-enqueue failure so injections are guaranteed even
        // for seeds whose probabilistic draws all pass.
        FaultRule enq;
        enq.ops = maskOf(Op::kEnqueue);
        enq.nth = 4;
        plan.rules.push_back(enq);
        const FaultPlan queues = FaultPlan::queueChaos(seed, 0.01);
        plan.rules.insert(plan.rules.end(), queues.rules.begin(),
                          queues.rules.end());
      }
      auto injector = std::make_shared<FaultInjector>(plan);
      obs::MetricsRegistry registry;
      injector->bindRegistry(registry);

      auto store =
          FaultyStore::wrap(kv::PartitionedStore::create(kGrid * kGrid),
                            injector);
      ebsp::EngineOptions engineOptions;
      engineOptions.retry = chaosRetry();
      engineOptions.metrics = &registry;
      if (!synchronized) {
        engineOptions.queuing =
            FaultyQueuing::wrap(mq::makeMemQueuing(store), injector);
      }
      ebsp::Engine engine(store, engineOptions);
      matrix::SummaOptions options;
      options.synchronized = synchronized;
      options.parts = kGrid * kGrid;
      const matrix::SummaResult r = runSumma(engine, a, b, options);

      EXPECT_TRUE(r.c.approxEqual(expected, 1e-9));
      expectLedger(registry, *injector);
    }
  }
}

// ---------------------------------------------------------------------
// Multi-threaded chaos: the same seeded schedules with the engines on a
// 4-thread pool.  Injection sites now depend on thread interleaving, but
// the invariants must not: results equal the fault-free baseline and the
// counter ledger still closes (every injected failure caught by exactly
// one retrier, concurrently charging workers included).
// ---------------------------------------------------------------------

TEST(Chaos, PageRankSyncAbsorbsStoreFaultsOnThreadPool) {
  const graph::Graph g = prGraph();
  const std::vector<double> baseline =
      runPageRankChaos(g, FaultPlan{}, chaosRetry(), /*checkpoint=*/false,
                       nullptr, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto injector = std::make_shared<FaultInjector>(
        FaultPlan::storeChaos(seed, 0.005));
    obs::MetricsRegistry registry;
    injector->bindRegistry(registry);
    injector->setArmed(false);
    auto store =
        FaultyStore::wrap(kv::PartitionedStore::create(6), injector);
    apps::loadPageRankGraph(*store, "pr_graph", g, 6);
    ebsp::EngineOptions engineOptions;
    engineOptions.threads = 4;
    engineOptions.retry = chaosRetry();
    engineOptions.metrics = &registry;
    ebsp::Engine engine(store, engineOptions);
    apps::PageRankOptions options;
    options.iterations = 6;
    injector->setArmed(true);
    apps::runPageRank(engine, options);
    injector->setArmed(false);
    expectSameRanks(apps::readRanks(*store, "pr_graph", g.vertexCount()),
                    baseline);
    expectLedger(registry, *injector);
  }
}

TEST(Chaos, SummaBothStrategiesUnderFaultsOnThreadPool) {
  constexpr std::uint32_t kGrid = 3;
  constexpr std::size_t kBlock = 8;
  Rng rng(77);
  matrix::BlockMatrix a(kGrid, kBlock);
  matrix::BlockMatrix b(kGrid, kBlock);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const matrix::BlockMatrix expected =
      matrix::BlockMatrix::multiplyReference(a, b);

  for (const bool synchronized : {true, false}) {
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE(std::string(synchronized ? "sync" : "no-sync") +
                   " seed=" + std::to_string(seed));
      FaultPlan plan = FaultPlan::storeChaos(seed, 0.02, "__ebsp");
      if (!synchronized) {
        // Same guarantee as the single-threaded leg: a deterministic
        // every-4th-enqueue failure ensures injections fire even for
        // seeds whose probabilistic draws all pass.
        FaultRule enq;
        enq.ops = maskOf(Op::kEnqueue);
        enq.nth = 4;
        plan.rules.push_back(enq);
        const FaultPlan queues = FaultPlan::queueChaos(seed, 0.01);
        plan.rules.insert(plan.rules.end(), queues.rules.begin(),
                          queues.rules.end());
      }
      auto injector = std::make_shared<FaultInjector>(plan);
      obs::MetricsRegistry registry;
      injector->bindRegistry(registry);

      auto store =
          FaultyStore::wrap(kv::PartitionedStore::create(kGrid * kGrid),
                            injector);
      ebsp::EngineOptions engineOptions;
      engineOptions.threads = 4;  // 9 parts multiplexed onto 4 workers.
      engineOptions.retry = chaosRetry();
      engineOptions.metrics = &registry;
      if (!synchronized) {
        engineOptions.queuing =
            FaultyQueuing::wrap(mq::makeMemQueuing(store), injector);
      }
      ebsp::Engine engine(store, engineOptions);
      matrix::SummaOptions options;
      options.synchronized = synchronized;
      options.parts = kGrid * kGrid;
      const matrix::SummaResult r = runSumma(engine, a, b, options);

      EXPECT_TRUE(r.c.approxEqual(expected, 1e-9));
      expectLedger(registry, *injector);
    }
  }
}

// ---------------------------------------------------------------------
// Determinism: the same FaultPlan seed reproduces the same injection
// sites and counters.  LocalStore runs parts sequentially, so the whole
// operation stream (and therefore every injection site) is reproducible.
// ---------------------------------------------------------------------

ebsp::RawJob chainJob(int rounds) {
  ebsp::RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.compute.compute = [rounds](ebsp::RawComputeContext& ctx) {
    const auto prev = ctx.readState(0);
    const std::int64_t count =
        prev ? decodeFromBytes<std::int64_t>(*prev) + 1 : 1;
    ctx.writeState(0, encodeToBytes(count));
    if (ctx.stepNum() < rounds) {
      const auto id = decodeFromBytes<int>(ctx.key());
      ctx.outputMessage(encodeToBytes((id + 1) % 8), encodeToBytes(1));
    }
    return false;
  };
  auto loader = std::make_shared<ebsp::VectorLoader>();
  for (int i = 0; i < 8; ++i) {
    loader->message(encodeToBytes(i), encodeToBytes(0));
  }
  job.loaders = {loader};
  return job;
}

TEST(Chaos, SameSeedReproducesSitesAndCounters) {
  auto run = [](std::uint64_t seed) {
    auto injector =
        std::make_shared<FaultInjector>(FaultPlan::storeChaos(seed, 0.03));
    obs::MetricsRegistry registry;
    injector->bindRegistry(registry);
    auto store = FaultyStore::wrap(kv::LocalStore::create(), injector);
    kv::TableOptions options;
    options.parts = 4;
    store->createTable("ref", std::move(options));
    ebsp::RawJob job = chainJob(12);
    ebsp::SyncEngineOptions engineOptions;
    // Pinned to one worker regardless of RIPPLE_THREADS: with a pool,
    // parts race to the shared injection rules, so the SITES drawn from
    // the jitter stream (not the results) vary run to run.
    engineOptions.threads = 1;
    engineOptions.retry = chaosRetry();
    engineOptions.metrics = &registry;
    ebsp::SyncEngine engine(store, engineOptions);
    engine.run(job);
    auto state = kv::readAll(*store->lookupTable("ref"));
    std::sort(state.begin(), state.end());
    return std::make_pair(registry.snapshot().counters, state);
  };

  const auto [countersA, stateA] = run(5);
  const auto [countersB, stateB] = run(5);
  const auto [countersC, stateC] = run(6);
  EXPECT_GT(countersA.at("fault.injected"), 0u);
  EXPECT_EQ(countersA, countersB);  // Same seed: identical ledger.
  EXPECT_EQ(stateA, stateB);
  EXPECT_EQ(stateA, stateC);  // Results never depend on the seed...
  EXPECT_NE(countersA.at("fault.injected"),
            countersC.at("fault.injected"));  // ...but the schedule does.
}

}  // namespace
}  // namespace ripple::fault
