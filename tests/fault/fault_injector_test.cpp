// FaultInjector semantics: trigger kinds, determinism, scoping, and the
// injection counters the chaos harness asserts against.

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"

namespace ripple::fault {
namespace {

FaultRule failEveryNth(std::uint64_t nth, OpMask ops = kAllOps) {
  FaultRule rule;
  rule.ops = ops;
  rule.nth = nth;
  return rule;
}

TEST(FaultInjector, EmptyPlanInjectsNothing) {
  FaultInjector injector(FaultPlan{});
  for (int i = 0; i < 1000; ++i) {
    injector.onOp(Op::kPut, "t", 0);
    injector.onOp(Op::kDequeue, "q", 1);
  }
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(FaultInjector, NthTriggerFiresOnEveryNthMatch) {
  FaultPlan plan;
  plan.rules.push_back(failEveryNth(3));
  FaultInjector injector(plan);
  std::vector<int> failedAt;
  for (int i = 1; i <= 9; ++i) {
    try {
      injector.onOp(Op::kPut, "t", 0);
    } catch (const TransientStoreError&) {
      failedAt.push_back(i);
    }
  }
  EXPECT_EQ(failedAt, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(injector.injectedFailures(), 3u);
}

TEST(FaultInjector, MatchCountersAreKeptPerPart) {
  FaultPlan plan;
  plan.rules.push_back(failEveryNth(2));
  FaultInjector injector(plan);
  // Interleave parts 0 and 1: each part fires on ITS OWN second op, so
  // concurrent parts cannot perturb each other's schedules.
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 1));
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 0), TransientStoreError);
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 1), TransientStoreError);
}

TEST(FaultInjector, OpMaskAndTableSubstringScopeTheRule) {
  FaultRule rule = failEveryNth(1, maskOf(Op::kPut));
  rule.tableSubstring = "state";
  FaultPlan plan;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  EXPECT_NO_THROW(injector.onOp(Op::kGet, "pr_state", 0));  // Wrong op.
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "transport", 0));  // Wrong table.
  EXPECT_THROW(injector.onOp(Op::kPut, "pr_state_7", 0), TransientStoreError);
}

TEST(FaultInjector, PartFilterScopesTheRule) {
  FaultRule rule = failEveryNth(1);
  rule.part = 2;
  FaultPlan plan;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 3));
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 2), TransientStoreError);
}

TEST(FaultInjector, StepFilterFollowsSetStep) {
  FaultRule rule = failEveryNth(1);
  rule.step = 2;
  FaultPlan plan;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));  // kAnyStep scope.
  injector.setStep(1);
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
  injector.setStep(2);
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 0), TransientStoreError);
  injector.setStep(kAnyStep);
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
}

TEST(FaultInjector, QueueOpsThrowTheQueueError) {
  FaultPlan plan;
  plan.rules.push_back(failEveryNth(1, kQueueOps));
  FaultInjector injector(plan);
  EXPECT_THROW(injector.onOp(Op::kDequeue, "q", 0), TransientQueueError);
  EXPECT_THROW(injector.onOp(Op::kEnqueue, "q", 0), TransientQueueError);
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
}

TEST(FaultInjector, KillActionThrowsWorkerKilled) {
  FaultRule rule = failEveryNth(1, maskOf(Op::kDequeue));
  rule.action = Action::kKillWorker;
  FaultPlan plan;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  EXPECT_THROW(injector.onOp(Op::kDequeue, "q", 0), WorkerKilled);
  EXPECT_EQ(injector.injectedKills(), 1u);
  EXPECT_EQ(injector.injectedFailures(), 0u);
}

TEST(FaultInjector, DelayActionProceedsAndCounts) {
  FaultRule rule = failEveryNth(1);
  rule.action = Action::kDelay;
  rule.delaySeconds = 0;  // Counted, not slept.
  FaultPlan plan;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
  EXPECT_EQ(injector.injectedDelays(), 1u);
  EXPECT_EQ(injector.injected(), 1u);
}

TEST(FaultInjector, MaxInjectionsCapsTheRule) {
  FaultRule rule = failEveryNth(1);
  rule.maxInjections = 2;
  FaultPlan plan;
  plan.rules.push_back(rule);
  FaultInjector injector(plan);
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 0), TransientStoreError);
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 0), TransientStoreError);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
  }
  EXPECT_EQ(injector.injectedFailures(), 2u);
}

TEST(FaultInjector, DisarmedInjectorMatchesNothing) {
  FaultPlan plan;
  plan.rules.push_back(failEveryNth(1));
  FaultInjector injector(plan);
  injector.setArmed(false);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(injector.onOp(Op::kPut, "t", 0));
  }
  injector.setArmed(true);
  EXPECT_THROW(injector.onOp(Op::kPut, "t", 0), TransientStoreError);
}

/// Replays a fixed op sequence and records which ordinals inject.
std::vector<int> injectionSites(FaultInjector& injector, int ops) {
  std::vector<int> sites;
  for (int i = 0; i < ops; ++i) {
    const std::uint32_t part = static_cast<std::uint32_t>(i % 4);
    try {
      injector.onOp(Op::kPut, "table", part);
    } catch (const TransientError&) {
      sites.push_back(i);
    }
  }
  return sites;
}

TEST(FaultInjector, ProbabilisticTriggerIsSeedDeterministic) {
  const FaultPlan plan = FaultPlan::storeChaos(/*seed=*/42, 0.1);
  FaultInjector a(plan);
  FaultInjector b(plan);
  const auto sitesA = injectionSites(a, 2000);
  const auto sitesB = injectionSites(b, 2000);
  EXPECT_FALSE(sitesA.empty());
  EXPECT_EQ(sitesA, sitesB);
  EXPECT_EQ(a.injectedFailures(), b.injectedFailures());
  // Roughly Bernoulli(0.1) over 2000 ops.
  EXPECT_GT(sitesA.size(), 100u);
  EXPECT_LT(sitesA.size(), 400u);
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSchedules) {
  FaultInjector a(FaultPlan::storeChaos(1, 0.1));
  FaultInjector b(FaultPlan::storeChaos(2, 0.1));
  EXPECT_NE(injectionSites(a, 2000), injectionSites(b, 2000));
}

TEST(FaultInjector, BindRegistryMirrorsCounts) {
  obs::MetricsRegistry registry;
  FaultPlan plan;
  plan.rules.push_back(failEveryNth(2));
  FaultInjector injector(plan);
  injector.bindRegistry(registry);
  for (int i = 0; i < 10; ++i) {
    try {
      injector.onOp(Op::kPut, "t", 0);
    } catch (const TransientError&) {
    }
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("fault.injected"), 5u);
  EXPECT_EQ(snap.counters.at("fault.injected_failures"), 5u);
  EXPECT_EQ(snap.counters.at("fault.injected_kills"), 0u);
}

TEST(FaultInjector, FirstMatchingRuleWins) {
  FaultRule kill = failEveryNth(1, maskOf(Op::kDequeue));
  kill.action = Action::kKillWorker;
  FaultPlan plan;
  plan.rules.push_back(kill);
  plan.rules.push_back(failEveryNth(1));  // Would also match.
  FaultInjector injector(plan);
  EXPECT_THROW(injector.onOp(Op::kDequeue, "q", 0), WorkerKilled);
  EXPECT_EQ(injector.injectedKills(), 1u);
  // The broader second rule still catches non-dequeue ops.
  EXPECT_THROW(injector.onOp(Op::kGet, "t", 0), TransientStoreError);
}

}  // namespace
}  // namespace ripple::fault
