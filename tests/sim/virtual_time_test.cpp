#include "sim/virtual_time.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/cost_model.h"

namespace ripple::sim {
namespace {

CostModel zeroCosts() {
  CostModel m;
  m.barrierOverhead = 0;
  m.messageLatency = 0;
  m.invocationOverhead = 0;
  m.perMessageCost = 0;
  return m;
}

TEST(VirtualCluster, RejectsZeroParts) {
  EXPECT_THROW(VirtualCluster(0, zeroCosts()), std::invalid_argument);
}

TEST(VirtualCluster, ChargeAdvancesOnePartOnly) {
  VirtualCluster vc(3, zeroCosts());
  vc.charge(1, 2.5);
  EXPECT_EQ(vc.now(0), 0.0);
  EXPECT_EQ(vc.now(1), 2.5);
  EXPECT_EQ(vc.makespan(), 2.5);
}

TEST(VirtualCluster, BarrierAdvancesAllToMaxPlusOverhead) {
  CostModel m = zeroCosts();
  m.barrierOverhead = 0.1;
  VirtualCluster vc(3, m);
  vc.charge(0, 1.0);
  vc.charge(2, 3.0);
  const double t = vc.barrier();
  EXPECT_DOUBLE_EQ(t, 3.1);
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_DOUBLE_EQ(vc.now(p), 3.1);
  }
}

TEST(VirtualCluster, DeliverWaitsForArrival) {
  CostModel m = zeroCosts();
  m.messageLatency = 0.5;
  VirtualCluster vc(2, m);
  // Receiver idle at 0; message sent at t=2 arrives at 2.5.
  EXPECT_DOUBLE_EQ(vc.deliver(1, 2.0), 2.5);
  // Receiver already past the arrival time: clock unchanged.
  vc.charge(0, 10.0);
  EXPECT_DOUBLE_EQ(vc.deliver(0, 2.0), 10.0);
}

TEST(VirtualCluster, SyncVsPipelineShape) {
  // Two parts alternate work; with barriers the makespan is the sum of
  // per-step maxima, roughly double the pipelined time.
  CostModel m = zeroCosts();
  VirtualCluster sync(2, m);
  for (int step = 0; step < 4; ++step) {
    sync.charge(step % 2, 1.0);  // Only one part busy per step.
    sync.barrier();
  }
  EXPECT_DOUBLE_EQ(sync.makespan(), 4.0);

  VirtualCluster pipe(2, m);
  double sendTime = 0;
  for (int hop = 0; hop < 4; ++hop) {
    const std::uint32_t part = hop % 2;
    pipe.deliver(part, sendTime);
    sendTime = pipe.charge(part, 1.0);
  }
  EXPECT_DOUBLE_EQ(pipe.makespan(), 4.0);  // A chain cannot pipeline...
  // ...but independent chains can: two chains on two parts.
  VirtualCluster par(2, m);
  par.charge(0, 4.0);
  par.charge(1, 4.0);
  EXPECT_DOUBLE_EQ(par.makespan(), 4.0);  // vs 8.0 serialized.
}

TEST(VirtualCluster, Reset) {
  VirtualCluster vc(2, zeroCosts());
  vc.charge(0, 5.0);
  vc.reset();
  EXPECT_EQ(vc.makespan(), 0.0);
}

TEST(ChargeScope, ChargesMeasuredCpuTime) {
  CostModel m = zeroCosts();
  VirtualCluster vc(1, m);
  {
    ChargeScope scope(&vc, 0);
    // Burn some CPU.
    volatile double x = 1.0;
    for (int i = 0; i < 2'000'000; ++i) {
      x = x * 1.0000001 + 1.0;
    }
  }
  EXPECT_GT(vc.now(0), 0.0);
}

TEST(ChargeScope, NullClusterIsNoop) {
  ChargeScope scope(nullptr, 0);  // Must not crash.
}

TEST(ChargeScope, AddsInvocationOverhead) {
  CostModel m = zeroCosts();
  m.invocationOverhead = 1.0;
  VirtualCluster vc(1, m);
  { ChargeScope scope(&vc, 0); }
  EXPECT_GE(vc.now(0), 1.0);
}

TEST(CostModelEnv, OverridesFromEnvironment) {
  ::setenv("RIPPLE_SIM_BARRIER", "0.25", 1);
  ::setenv("RIPPLE_SIM_LATENCY", "0.125", 1);
  const CostModel m = costModelFromEnv();
  EXPECT_DOUBLE_EQ(m.barrierOverhead, 0.25);
  EXPECT_DOUBLE_EQ(m.messageLatency, 0.125);
  ::unsetenv("RIPPLE_SIM_BARRIER");
  ::unsetenv("RIPPLE_SIM_LATENCY");
}

TEST(CostModelEnv, MalformedValueFallsBack) {
  ::setenv("RIPPLE_SIM_BARRIER", "not-a-number", 1);
  const CostModel m = costModelFromEnv();
  EXPECT_DOUBLE_EQ(m.barrierOverhead, CostModel::defaults().barrierOverhead);
  ::unsetenv("RIPPLE_SIM_BARRIER");
}

TEST(ThreadCpuSeconds, MonotonicUnderWork) {
  const double before = threadCpuSeconds();
  volatile double x = 1.0;
  for (int i = 0; i < 1'000'000; ++i) {
    x = x * 1.0000001 + 1.0;
  }
  EXPECT_GE(threadCpuSeconds(), before);
}

}  // namespace
}  // namespace ripple::sim
