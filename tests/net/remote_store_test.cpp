// RemoteStore behaviors beyond the shared SPI conformance suite (which
// already runs bare + fault-decorated against the loopback stack):
// placement actually shards state across multiple real servers, injected
// transient network faults are retried with a closed fault ledger,
// server-side exceptions rethrow as the right std types, endpoint parsing,
// and shutdown idempotence.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fault/fault.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"
#include "mq/queue.h"
#include "net/remote_store.h"
#include "net/server.h"

namespace ripple::net {
namespace {

TEST(PlacementMap, RoundRobinAndValidation) {
  EXPECT_THROW(PlacementMap(0), std::invalid_argument);
  const PlacementMap map(3);
  EXPECT_EQ(map.endpointCount(), 3u);
  EXPECT_EQ(map.endpointOf(0), 0u);
  EXPECT_EQ(map.endpointOf(1), 1u);
  EXPECT_EQ(map.endpointOf(2), 2u);
  EXPECT_EQ(map.endpointOf(3), 0u);
  EXPECT_EQ(map.endpointOf(7), 1u);
}

TEST(EndpointParse, AcceptsValidRejectsMalformed) {
  const Endpoint e = parseEndpoint("10.1.2.3:8080");
  EXPECT_EQ(e.host, "10.1.2.3");
  EXPECT_EQ(e.port, 8080);
  EXPECT_EQ(e.str(), "10.1.2.3:8080");

  const auto list = parseEndpointList("127.0.0.1:1,127.0.0.1:2, 127.0.0.1:3");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2].port, 3);

  EXPECT_THROW(parseEndpoint("no-port"), std::invalid_argument);
  EXPECT_THROW(parseEndpoint("host:"), std::invalid_argument);
  EXPECT_THROW(parseEndpoint("host:notaport"), std::invalid_argument);
  EXPECT_THROW(parseEndpoint("host:0"), std::invalid_argument);
  EXPECT_THROW(parseEndpoint("host:70000"), std::invalid_argument);
  EXPECT_THROW(parseEndpointList(""), std::invalid_argument);
}

// Two real servers with inspectable hosted stores: writes through the
// RemoteStore land on the server owning the part (part % 2), nowhere else.
TEST(RemoteStoreSharding, PartsLandOnTheirPlacedServer) {
  auto hosted0 = kv::PartitionedStore::create(2);
  auto hosted1 = kv::PartitionedStore::create(2);
  Server::Options so0;
  so0.hosted = hosted0;
  Server::Options so1;
  so1.hosted = hosted1;
  Server server0(std::move(so0));
  Server server1(std::move(so1));
  server0.start();
  server1.start();

  {
    RemoteStore::Options options;
    options.client.endpoints = {Endpoint{"127.0.0.1", server0.port()},
                                Endpoint{"127.0.0.1", server1.port()}};
    auto store = RemoteStore::create(std::move(options));

    kv::TableOptions topts;
    topts.parts = 4;
    auto table = store->createTable("t", std::move(topts));
    for (int i = 0; i < 40; ++i) {
      table->put("key" + std::to_string(i), "v" + std::to_string(i));
    }
    EXPECT_EQ(table->size(), 40u);

    // Each server holds exactly the pairs of its parts; together, all 40.
    const auto t0 = hosted0->lookupTable("t");
    const auto t1 = hosted1->lookupTable("t");
    ASSERT_TRUE(t0 && t1);
    EXPECT_EQ(t0->size() + t1->size(), 40u);
    EXPECT_GT(t0->size(), 0u);  // 4 parts over 2 servers: both own state.
    EXPECT_GT(t1->size(), 0u);
    EXPECT_EQ(t0->size(),
              table->partSize(0) + table->partSize(2));  // parts 0,2 → e0
    EXPECT_EQ(t1->size(),
              table->partSize(1) + table->partSize(3));  // parts 1,3 → e1

    // Reads route back and reassemble the full table.
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(table->get("key" + std::to_string(i)),
                "v" + std::to_string(i));
    }
    store->shutdown();
  }
  server0.stop();
  server1.stop();
}

// Injected transient network faults are retried by the client's
// fault::Retrier, and the ledger closes: every injected failure is
// accounted as either a retry or an escalation.
TEST(RemoteStoreFaults, InjectedTransientsRetriedWithClosedLedger) {
  LoopbackOptions options;
  options.injector = std::make_shared<fault::FaultInjector>(
      fault::FaultPlan::storeChaos(7, 0.2, "t"));
  options.retry.initialBackoffMs = 0.05;
  options.retry.maxBackoffMs = 0.2;
  auto store = makeLoopbackStore(std::move(options));

  kv::TableOptions topts;
  topts.parts = 4;
  auto table = store->createTable("t", std::move(topts));
  std::uint64_t completed = 0;
  std::uint64_t escalatedOps = 0;
  for (int i = 0; i < 300; ++i) {
    try {
      table->put("k" + std::to_string(i), "v");
      (void)table->get("k" + std::to_string(i));
      completed += 2;
    } catch (const fault::TransientError&) {
      ++escalatedOps;  // Retry budget exhausted; surfaced to the caller.
    }
  }
  EXPECT_GT(completed, 0u);

  const auto& injector = *store->client().options().injector;
  EXPECT_GT(injector.injectedFailures(), 0u);
  // Closed ledger: injections == retries + escalations (an injected fault
  // fires before any bytes go out, so each is either absorbed by a retry
  // or escalates to the caller).
  EXPECT_EQ(injector.injectedFailures(),
            store->client().retries() + store->client().escalations());
  if (escalatedOps > 0) {
    EXPECT_GT(store->client().escalations(), 0u);
  }
}

// Server-side failures rethrow client-side as the same std exception
// types the in-process backends throw — and are NOT retried.
TEST(RemoteStoreErrors, ServerExceptionsRethrowSameTypeWithoutRetry) {
  auto store = makeLoopbackStore({});
  kv::TableOptions topts;
  topts.parts = 2;
  auto table = store->createTable("t", std::move(topts));
  table->put("a", "1");

  // A second driver sharing the servers: its duplicate CREATE is refused
  // by the server (the first driver's table owns the name there).
  {
    RemoteStore::Options options;
    options.client.endpoints = {store->client().endpointAt(0)};
    auto other = RemoteStore::create(std::move(options));
    kv::TableOptions dup;
    dup.parts = 2;
    EXPECT_THROW(other->createTable("t", std::move(dup)),
                 std::invalid_argument);
    EXPECT_EQ(other->client().retries(), 0u);  // Typed errors never retry.
    other->shutdown();
  }
  EXPECT_EQ(table->get("a"), "1");  // First driver unaffected.
}

// Regression for two lock-discipline findings:
//  1. RemoteStore::createTable/dropTable (and RemoteQueuing's create) used
//     to hold their registry lock across the blocking wire round-trips —
//     one dead server away from wedging every table operation.  The wire
//     calls now run unlocked between a reserve and a publish step.
//  2. That fix lets the driver-side registry take a STORE rank
//     (kStoreTableMap) instead of a net rank, so layering a table-backed
//     queuing on a RemoteStore — whose queuing registry legitimately
//     calls createTable/dropTable from under its own kQueue lock — obeys
//     the global rank order.  Pre-fix, this test aborts in the rank
//     validator on the ascending kQueue -> net-registry acquisition.
TEST(RemoteStoreRegistry, TableQueuingOverRemoteStoreNestsCleanly) {
  auto store = makeLoopbackStore({});
  auto queuing = mq::makeTableQueuing(store);
  kv::TableOptions topts;
  topts.parts = 2;
  auto placement = store->createTable("placement", std::move(topts));
  auto set = queuing->createQueueSet("q", placement);
  EXPECT_TRUE(set->put(0, "m"));
  queuing->deleteQueueSet("q");  // dropTable under the queuing registry.
  EXPECT_FALSE(set->put(0, "n"));
  store->shutdown();
}

TEST(RemoteStoreLifecycle, ShutdownIsIdempotent) {
  auto store = makeLoopbackStore({});
  kv::TableOptions topts;
  topts.parts = 2;
  auto table = store->createTable("t", std::move(topts));
  table->put("k", "v");
  store->shutdown();
  store->shutdown();  // No-op.
  // Requests after shutdown fail as transient (pool closed, servers gone),
  // not as crashes or hangs.
  EXPECT_THROW(table->put("k2", "v2"), fault::TransientStoreError);
}

TEST(ServerLifecycle, StopIsIdempotentAndShutdownOpcodeSignals) {
  auto hosted = kv::PartitionedStore::create(2);
  Server::Options so;
  so.hosted = hosted;
  Server server(std::move(so));
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_FALSE(server.stopRequested());

  Client::Options copts;
  copts.endpoints = {Endpoint{"127.0.0.1", server.port()}};
  Client client(std::move(copts));
  (void)client.call(0, Opcode::kPing, "", fault::Op::kGet, "", 0);
  (void)client.call(0, Opcode::kShutdown, "", fault::Op::kGet, "", 0);
  server.waitUntilStopRequested();  // The opcode signals the host loop...
  EXPECT_TRUE(server.stopRequested());
  EXPECT_TRUE(server.running());  // ...which owns the actual stop.
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // Idempotent.
  client.closeAll();
}

}  // namespace
}  // namespace ripple::net
