// Endpoint failover (DESIGN.md §11): a server process crashing and
// restarting mid-job must be *detected* (session epoch change), *bridged*
// at the transport (stale-pool invalidation, redial budget, dedup replay
// of re-sent non-idempotent requests), and *escalated* correctly — the
// synchronized engine re-seeds the fresh incarnation from its driver-side
// checkpoint mirror and replays to a digest-identical result; paths with
// no checkpoint surface fault::StateLostError instead of hanging or
// silently corrupting.
//
// The Fleet harness below runs real servers on real sockets and bounces
// them: stop, discard the hosted store (the "lost in-memory parts"), and
// restart on the same port (the listener sets SO_REUSEADDR precisely so a
// restarted server can rebind its address).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "apps/pagerank.h"
#include "common/codec.h"
#include "common/random.h"
#include "ebsp/engine.h"
#include "ebsp/library.h"
#include "fault/fault.h"
#include "graph/graph_gen.h"
#include "kvstore/partitioned_store.h"
#include "matrix/summa.h"
#include "mq/queue.h"
#include "net/remote_queue.h"
#include "net/remote_store.h"
#include "net/server.h"

namespace ripple::net {
namespace {

/// Fast test retry: a handful of attempts, sub-millisecond backoffs.
fault::RetryPolicy fastRetry(int maxAttempts = 6) {
  fault::RetryPolicy policy;
  policy.maxAttempts = maxAttempts;
  policy.initialBackoffMs = 0.05;
  policy.maxBackoffMs = 0.5;
  return policy;
}

/// N real servers, each hosting a discardable PartitionedStore.
/// bounce(i) models a crash/restart: the hosted store is REPLACED (all
/// in-memory parts lost) and the new incarnation listens on the same port.
class Fleet {
 public:
  explicit Fleet(std::size_t servers, std::uint32_t hostedContainers = 4,
                 std::uint32_t maxQueueWaitMs = 0)
      : hostedContainers_(hostedContainers), maxQueueWaitMs_(maxQueueWaitMs) {
    for (std::size_t i = 0; i < servers; ++i) {
      servers_.push_back(makeServer(Endpoint{}));
      servers_.back()->start();
      ports_.push_back(servers_.back()->port());
    }
  }

  ~Fleet() {
    for (auto& server : servers_) {
      if (server) {
        server->stop();
      }
    }
  }

  [[nodiscard]] std::vector<Endpoint> endpoints() const {
    std::vector<Endpoint> out;
    for (const std::uint16_t port : ports_) {
      out.push_back(Endpoint{"127.0.0.1", port});
    }
    return out;
  }

  [[nodiscard]] Server& server(std::size_t i) { return *servers_.at(i); }

  /// Crash + restart server `i` on its original port with empty state.
  void bounce(std::size_t i) {
    servers_.at(i)->stop();
    servers_.at(i).reset();  // Hosted store (and all its parts) dies here.
    servers_.at(i) = makeServer(Endpoint{"127.0.0.1", ports_.at(i)});
    servers_.at(i)->start();
  }

 private:
  [[nodiscard]] std::unique_ptr<Server> makeServer(Endpoint listenOn) {
    Server::Options options;
    options.listenOn = std::move(listenOn);
    options.hosted = kv::PartitionedStore::create(hostedContainers_);
    if (maxQueueWaitMs_ != 0) {
      options.maxQueueWaitMs = maxQueueWaitMs_;
    }
    return std::make_unique<Server>(std::move(options));
  }

  std::uint32_t hostedContainers_;
  std::uint32_t maxQueueWaitMs_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::uint16_t> ports_;
};

std::shared_ptr<RemoteStore> storeOver(const Fleet& fleet,
                                       fault::RetryPolicy retry = fastRetry()) {
  RemoteStore::Options options;
  options.client.endpoints = fleet.endpoints();
  options.client.retry = retry;
  return RemoteStore::create(std::move(options));
}

// ---------------------------------------------------------------------
// Session epochs.
// ---------------------------------------------------------------------

TEST(FailoverEpoch, HandshakeRecordsServerIncarnation) {
  Fleet fleet(1);
  auto store = storeOver(fleet);
  kv::TableOptions topts;
  topts.parts = 2;
  (void)store->createTable("t", std::move(topts));

  const std::uint64_t epoch = store->client().knownEpoch(0);
  EXPECT_NE(epoch, 0u);
  EXPECT_EQ(epoch, fleet.server(0).incarnation());
  store->shutdown();
}

TEST(FailoverEpoch, BounceMintsADistinctIncarnation) {
  Fleet fleet(1);
  const std::uint64_t first = fleet.server(0).incarnation();
  EXPECT_NE(first, 0u);
  fleet.bounce(0);
  EXPECT_NE(fleet.server(0).incarnation(), 0u);
  EXPECT_NE(fleet.server(0).incarnation(), first);
}

// ---------------------------------------------------------------------
// Pool staleness + restart detection (regression: pre-failover, a bounced
// server wedged the client on dead pooled connections, and `reconnects`
// conflated first dials with true re-dials).
// ---------------------------------------------------------------------

TEST(FailoverRestart, StalePoolIsInvalidatedAndStateLossEscalates) {
  Fleet fleet(1);
  auto store = storeOver(fleet);
  kv::TableOptions topts;
  topts.parts = 2;
  auto table = store->createTable("t", std::move(topts));
  table->put("a", "1");
  const NetMetrics& m = store->client().metrics();
  EXPECT_EQ(m.dials.load(), 1u);
  EXPECT_EQ(m.reconnects.load(), 0u);  // First dial is not a "reconnect".

  fleet.bounce(0);

  // First op after the bounce: the pooled connection probes dead and is
  // invalidated, the re-dial reaches the fresh incarnation, the handshake
  // detects the epoch change, the restart hook re-creates the table
  // registry there, and the op escalates as StateLostError — NOT as a
  // transient absorbed by blind retries.
  EXPECT_THROW((void)table->get("a"), fault::StateLostError);
  EXPECT_EQ(store->client().retries(), 0u);
  EXPECT_GE(m.poolInvalidated.load(), 1u);
  EXPECT_EQ(m.epochChanges.load(), 1u);
  EXPECT_EQ(m.reseeds.load(), 1u);
  // Dial ledger: initial dial, the re-dial that detected the restart, and
  // the reseed hook's own connection (which is pooled afterwards).
  EXPECT_EQ(m.dials.load(), 3u);
  EXPECT_EQ(m.reconnects.load(), 2u);

  // The endpoint is healthy again: the reseeded table exists (no
  // invalid_argument), its data is gone (that is what "state lost"
  // means), and new writes stick — all without another dial.
  EXPECT_EQ(table->get("a"), std::nullopt);
  table->put("a", "2");
  EXPECT_EQ(table->get("a"), "2");
  EXPECT_EQ(m.dials.load(), 3u);
  EXPECT_EQ(m.epochChanges.load(), 1u);
  store->shutdown();
}

// ---------------------------------------------------------------------
// Dedup replay: exactly-once effects for re-sent non-idempotent requests.
// ---------------------------------------------------------------------

/// Sever the connection the first `times` exchanges matching `op`/`point`.
ChaosHook severOnce(Opcode op, ChaosPoint point, int times = 1) {
  auto remaining = std::make_shared<std::atomic<int>>(times);
  return [op, point, remaining](Opcode o, ChaosPoint p) {
    if (o == op && p == point &&
        remaining->fetch_sub(1, std::memory_order_acq_rel) > 0) {
      return true;
    }
    return false;
  };
}

TEST(FailoverDedup, QueuePutSeveredAfterSendIsReplayedNotReExecuted) {
  LoopbackOptions options;
  options.retry = fastRetry();
  options.chaos = severOnce(Opcode::kQueuePut, ChaosPoint::kAfterSend);
  auto store = makeLoopbackStore(std::move(options));
  auto queuing = makeRemoteQueuing(store);
  kv::TableOptions topts;
  topts.parts = 2;
  auto placement = store->createTable("placement", std::move(topts));
  auto set = queuing->createQueueSet("q", placement);

  // The first put's response is lost after the server executed it.  The
  // re-send must hit the dedup cache: one message in the queue, not two.
  EXPECT_TRUE(set->put(0, "m"));
  EXPECT_EQ(set->backlog(), 1u);
  EXPECT_EQ(store->client().metrics().dedupReplays.load(), 1u);
  EXPECT_GE(store->client().retries(), 1u);
  store->shutdown();
}

TEST(FailoverDedup, DrainSeveredAfterSendReplaysTheDrainedPairs) {
  LoopbackOptions options;
  options.retry = fastRetry();
  options.chaos = severOnce(Opcode::kDrainPart, ChaosPoint::kAfterSend);
  auto store = makeLoopbackStore(std::move(options));
  kv::TableOptions topts;
  topts.parts = 1;
  auto table = store->createTable("d", std::move(topts));
  table->put("a", "1");
  table->put("b", "2");

  // drainPart is destructive: the server drained the part but the
  // response died.  The replay must return the recorded pairs — losing
  // them (or draining twice) would drop or duplicate engine messages.
  const auto pairs = table->drainPart(0);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, "a");
  EXPECT_EQ(pairs[0].second, "1");
  EXPECT_EQ(pairs[1].first, "b");
  EXPECT_EQ(pairs[1].second, "2");
  EXPECT_EQ(store->client().metrics().dedupReplays.load(), 1u);
  EXPECT_EQ(table->drainPart(0).size(), 0u);  // Drained exactly once.
  store->shutdown();
}

TEST(FailoverDedup, CreateTableSeveredAfterSendDoesNotRefuseTheRetry) {
  LoopbackOptions options;
  options.retry = fastRetry();
  options.chaos = severOnce(Opcode::kCreateTable, ChaosPoint::kAfterSend);
  auto store = makeLoopbackStore(std::move(options));
  kv::TableOptions topts;
  topts.parts = 2;
  // Without dedup the re-sent CREATE would be refused as a duplicate by
  // the server that already executed the first send.
  auto table = store->createTable("t", std::move(topts));
  table->put("k", "v");
  EXPECT_EQ(table->get("k"), "v");
  EXPECT_EQ(store->client().metrics().dedupReplays.load(), 1u);
  store->shutdown();
}

// ---------------------------------------------------------------------
// ConnectionClosed at every exchange boundary, per idempotence class.
// ---------------------------------------------------------------------

TEST(FailoverBoundaries, IdempotentOpsRetryAtEveryBoundary) {
  for (const ChaosPoint point :
       {ChaosPoint::kBeforeSend, ChaosPoint::kAfterSend,
        ChaosPoint::kAfterReceive}) {
    SCOPED_TRACE(static_cast<int>(point));
    LoopbackOptions options;
    options.retry = fastRetry();
    options.chaos = severOnce(Opcode::kGet, point, 2);
    auto store = makeLoopbackStore(std::move(options));
    kv::TableOptions topts;
    topts.parts = 2;
    auto table = store->createTable("t", std::move(topts));
    table->put("k", "v");
    // kGet is marked idempotent (retryIo): severed connections at any
    // boundary are absorbed.  kAfterReceive completes the exchange and
    // only kills the pooled connection, so it costs a reconnect, not a
    // retry.
    EXPECT_EQ(table->get("k"), "v");
    EXPECT_EQ(table->get("k"), "v");
    if (point != ChaosPoint::kAfterReceive) {
      EXPECT_GE(store->client().retries(), 1u);
    } else {
      EXPECT_EQ(store->client().retries(), 0u);
      EXPECT_GE(store->client().metrics().reconnects.load(), 1u);
    }
    store->shutdown();
  }
}

TEST(FailoverBoundaries, NonIdempotentNonDedupRequestsPropagateClosed) {
  // A raw exchange with neither retryIo nor dedup must surface the
  // precise ConnectionClosed condition: the client cannot know whether
  // the server performed the op, and it must not guess.
  Fleet fleet(1);
  Client::Options copts;
  copts.endpoints = fleet.endpoints();
  copts.retry = fastRetry();
  copts.chaos = severOnce(Opcode::kPing, ChaosPoint::kAfterSend);
  Client client(std::move(copts));
  EXPECT_THROW((void)client.call(0, Opcode::kPing, "", fault::Op::kGet, "",
                                 0, /*retryIo=*/false, /*dedup=*/false),
               ConnectionClosed);
  (void)client.call(0, Opcode::kPing, "", fault::Op::kGet, "", 0);
  client.closeAll();
}

// ---------------------------------------------------------------------
// Circuit breaker + half-open probes.
// ---------------------------------------------------------------------

TEST(FailoverBreaker, OpensAfterThresholdAndRecoversViaHalfOpenProbe) {
  // Reserve a real port, then stop its owner so dials are refused.
  std::uint16_t port = 0;
  {
    Fleet probe(1);
    port = probe.endpoints()[0].port;
  }

  Client::Options copts;
  copts.endpoints = {Endpoint{"127.0.0.1", port}};
  copts.retry = fastRetry(/*maxAttempts=*/1);  // One dial per call.
  copts.breakerThreshold = 3;
  Client client(std::move(copts));

  const NetMetrics& m = client.metrics();
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)client.call(0, Opcode::kPing, "", fault::Op::kGet,
                                   "", 0),
                 fault::TransientStoreError);
  }
  EXPECT_EQ(m.breakerOpens.load(), 1u);
  EXPECT_EQ(m.dials.load(), 0u);  // No dial ever succeeded.

  // A server comes up on the address.  After the cooldown, the next call
  // is the half-open probe; it must close the breaker and succeed.
  Server::Options sopts;
  sopts.listenOn = Endpoint{"127.0.0.1", port};
  sopts.hosted = kv::PartitionedStore::create(2);
  Server server(std::move(sopts));
  server.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  (void)client.call(0, Opcode::kPing, "", fault::Op::kGet, "", 0);
  EXPECT_EQ(m.halfOpenProbes.load(), 1u);
  EXPECT_EQ(m.dials.load(), 1u);
  (void)client.call(0, Opcode::kPing, "", fault::Op::kGet, "", 0);
  EXPECT_EQ(m.halfOpenProbes.load(), 1u);  // Breaker closed again.
  client.closeAll();
  server.stop();
}

// ---------------------------------------------------------------------
// Queue plane: restarts escalate; dead servers still terminate reads.
// ---------------------------------------------------------------------

TEST(FailoverQueues, PutAfterBounceEscalatesAsStateLost) {
  Fleet fleet(1);
  auto store = storeOver(fleet);
  auto queuing = makeRemoteQueuing(store);
  kv::TableOptions topts;
  topts.parts = 2;
  auto placement = store->createTable("placement", std::move(topts));
  auto set = queuing->createQueueSet("q", placement);
  EXPECT_TRUE(set->put(0, "m"));

  fleet.bounce(0);

  // The restart lost the queue's buffered messages; there is no replay
  // for that, so the queue plane must escalate the typed error (the
  // no-sync engine turns it into a job failure), and the reseed hook
  // must have re-created the set on the fresh incarnation.
  EXPECT_THROW((void)set->put(0, "n"), fault::StateLostError);
  EXPECT_TRUE(set->put(0, "n"));
  EXPECT_EQ(set->backlog(), 1u);  // "m" is gone with the old incarnation.
  store->shutdown();
}

TEST(FailoverQueues, ServerCapsOverlongQueueWaits) {
  // A client asking for a 5s blocking read against a server configured
  // with a 30ms cap must come back quickly (the cap is what keeps server
  // connection threads joinable during stop()).
  Fleet fleet(1, 2, /*maxQueueWaitMs=*/30);
  Client::Options copts;
  copts.endpoints = fleet.endpoints();
  Client client(std::move(copts));

  {
    ByteWriter w;
    w.putBytes("q");
    w.putVarint(1);
    (void)client.call(0, Opcode::kQueueCreate, w.view(), fault::Op::kEnqueue,
                      "q", 0, /*retryIo=*/false, /*dedup=*/true);
  }
  ByteWriter w;
  w.putBytes("q");
  w.putFixed32(0);
  w.putFixed32(5000);  // Client asks for 5s...
  w.putU8(0);
  const auto start = std::chrono::steady_clock::now();
  const Bytes response = client.call(0, Opcode::kQueueRead, w.view(),
                                     fault::Op::kDequeue, "q", 0);
  const double elapsedMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ByteReader r(response);
  EXPECT_EQ(r.getU8(), 1);       // ...and gets a bounded "empty for now".
  EXPECT_LT(elapsedMs, 2000.0);  // Not the requested 5s.
  client.closeAll();
}

// ---------------------------------------------------------------------
// Engine escalation: synchronized replays from the driver mirror to a
// digest-identical result; paths without checkpoints fail typed.
// ---------------------------------------------------------------------

graph::Graph failoverGraph() {
  graph::PowerLawOptions options;
  options.vertices = 120;
  options.edges = 600;
  options.seed = 5;
  return graph::generatePowerLaw(options);
}

std::vector<double> runRemotePageRank(Fleet& fleet, bool bounceAtStep2,
                                      std::uint64_t* recoveriesOut) {
  auto store = storeOver(fleet, fastRetry(8));
  const graph::Graph g = failoverGraph();
  apps::loadPageRankGraph(*store, "pr_graph", g, 6);

  ebsp::EngineOptions engineOptions;
  engineOptions.retry = fastRetry(8);
  engineOptions.checkpoint.enabled = true;
  engineOptions.checkpoint.interval = 1;
  bool bounced = false;
  engineOptions.onBarrier = [&](int step) {
    if (bounceAtStep2 && step == 2 && !bounced) {
      bounced = true;
      fleet.bounce(1);
    }
  };
  ebsp::Engine engine(store, engineOptions);
  apps::PageRankOptions options;
  options.iterations = 5;
  const apps::PageRankResult result = apps::runPageRank(engine, options);
  if (recoveriesOut != nullptr) {
    *recoveriesOut = result.job.metrics.recoveries;
  }
  const auto ranks = apps::readRanks(*store, "pr_graph", g.vertexCount());
  store->shutdown();
  return ranks;
}

TEST(FailoverEngine, SyncPageRankSurvivesABounceDigestIdentical) {
  std::vector<double> baseline;
  {
    Fleet fleet(2);
    baseline = runRemotePageRank(fleet, /*bounceAtStep2=*/false, nullptr);
  }
  Fleet fleet(2);
  std::uint64_t recoveries = 0;
  const std::vector<double> ranks =
      runRemotePageRank(fleet, /*bounceAtStep2=*/true, &recoveries);

  // Server 1 was killed after barrier 2 (its parts and their shadow of
  // the graph died with it).  The engine re-seeded the fresh incarnation
  // from the committed driver-mirror checkpoint and re-ran from step 3:
  // same ranks, to the same FP-combine tolerance the chaos suite uses.
  ASSERT_EQ(ranks.size(), baseline.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_NEAR(ranks[i], baseline[i], 1e-12) << "vertex " << i;
  }
  EXPECT_GE(recoveries, 1u);
}

matrix::BlockMatrix runRemoteSumma(Fleet& fleet, bool bounceAtStep2,
                                   std::uint64_t* recoveriesOut) {
  auto store = storeOver(fleet, fastRetry(8));
  // Grid 3 so the block multicasts are multi-hop rings: at any barrier
  // some forwarded blocks exist ONLY as in-flight messages, the state
  // that dies hardest with a server.
  constexpr std::size_t kGrid = 3;
  Rng rng(77);
  matrix::BlockMatrix a(kGrid, 4);
  matrix::BlockMatrix b(kGrid, 4);
  a.fillRandom(rng);
  b.fillRandom(rng);

  ebsp::EngineOptions engineOptions;
  engineOptions.retry = fastRetry(8);
  engineOptions.checkpoint.enabled = true;
  engineOptions.checkpoint.interval = 1;
  bool bounced = false;
  engineOptions.onBarrier = [&](int step) {
    if (bounceAtStep2 && step == 2 && !bounced) {
      bounced = true;
      fleet.bounce(1);
    }
  };
  ebsp::Engine engine(store, engineOptions);
  matrix::SummaOptions options;
  options.parts = kGrid * kGrid;
  matrix::SummaResult result = runSumma(engine, a, b, options);
  if (recoveriesOut != nullptr) {
    *recoveriesOut = result.job.metrics.recoveries;
  }
  store->shutdown();
  return result.c;
}

// Regression: SUMMA caches component state as live objects and writes the
// table back only at completion.  Without the checkpointed() write-back
// contract and the onRecovery cache drop, a restart mid-job replays
// against a stale table + an ahead-of-truth cache, forwarded blocks are
// never re-sent, and components quiesce with unfinished multiplies.
TEST(FailoverEngine, SyncSummaSurvivesABounceDigestIdentical) {
  matrix::BlockMatrix baseline(0, 0);
  {
    Fleet fleet(2);
    baseline = runRemoteSumma(fleet, /*bounceAtStep2=*/false, nullptr);
  }
  Fleet fleet(2);
  std::uint64_t recoveries = 0;
  const matrix::BlockMatrix c =
      runRemoteSumma(fleet, /*bounceAtStep2=*/true, &recoveries);

  ASSERT_EQ(c.grid(), baseline.grid());
  for (std::size_t i = 0; i < c.grid(); ++i) {
    for (std::size_t j = 0; j < c.grid(); ++j) {
      const auto& got = c.block(i, j).data();
      const auto& want = baseline.block(i, j).data();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_NEAR(got[k], want[k], 1e-12) << "block (" << i << "," << j
                                            << ") element " << k;
      }
    }
  }
  EXPECT_GE(recoveries, 1u);
}

TEST(FailoverEngine, NoSyncWithLostQueueStateFailsTyped) {
  Fleet fleet(1);
  auto store = storeOver(fleet);
  ebsp::EngineOptions engineOptions;
  engineOptions.mode = ebsp::ExecutionMode::kNoSync;
  engineOptions.retry = fastRetry();
  ebsp::Engine engine(store, engineOptions);

  kv::TableOptions refOptions;
  refOptions.parts = 4;
  (void)store->createTable("ref", std::move(refOptions));

  // A minimal no-sync-eligible job whose compute crashes the server
  // mid-run: the in-flight messages died with the old incarnation, and
  // the no-sync strategy has no checkpoint to replay them from.
  ebsp::RawJob job;
  job.referenceTable = "ref";
  job.stateTableNames = {"ref"};
  job.properties.oneMsg = true;
  job.properties.noContinue = true;
  job.properties.noSsOrder = true;
  std::atomic<bool> bounced{false};
  job.compute.compute = [&](ebsp::RawComputeContext& ctx) {
    if (!bounced.exchange(true)) {
      fleet.bounce(0);
      ctx.outputMessage("b", "ripple");  // First wire op after the crash.
    }
    return false;
  };
  auto loader = std::make_shared<ebsp::VectorLoader>();
  loader->message("a", "go");
  job.loaders = {loader};

  // The engine must surface the typed escalation — not hang on the
  // recreated-empty queues of the fresh incarnation, and not silently
  // complete with lost messages.
  EXPECT_THROW((void)engine.run(job), fault::StateLostError);
  store->shutdown();
}

// ---------------------------------------------------------------------
// Timeout configuration (EngineOptions + RIPPLE_NET_* environment).
// ---------------------------------------------------------------------

TEST(FailoverTuning, ParseEnvMsIsStrict) {
  ::unsetenv("RIPPLE_NET_TIMEOUT_MS");
  EXPECT_EQ(parseEnvMs("RIPPLE_NET_TIMEOUT_MS", 1, 1000), std::nullopt);
  ::setenv("RIPPLE_NET_TIMEOUT_MS", "250", 1);
  EXPECT_EQ(parseEnvMs("RIPPLE_NET_TIMEOUT_MS", 1, 1000), 250);
  for (const char* bad : {"", "abc", "250x", "-5", "1000000"}) {
    ::setenv("RIPPLE_NET_TIMEOUT_MS", bad, 1);
    EXPECT_EQ(parseEnvMs("RIPPLE_NET_TIMEOUT_MS", 1, 1000), std::nullopt)
        << "'" << bad << "' must be rejected";
  }
  ::unsetenv("RIPPLE_NET_TIMEOUT_MS");
}

TEST(FailoverTuning, ExplicitTuningWinsOverEnvironment) {
  ::setenv("RIPPLE_NET_TIMEOUT_MS", "1111", 1);
  ::setenv("RIPPLE_NET_REDIAL_MS", "2222", 1);
  ::setenv("RIPPLE_NET_QUEUE_WAIT_MS", "333", 1);
  NetTuning explicitTuning;
  explicitTuning.timeoutMs = 4444;
  const NetTuning resolved = resolveNetTuning(explicitTuning);
  EXPECT_EQ(resolved.timeoutMs, 4444);  // Explicit field wins.
  EXPECT_EQ(resolved.redialMs, 2222);   // Unset fields fall to the env.
  EXPECT_EQ(resolved.queueWaitMs, 333);
  ::unsetenv("RIPPLE_NET_TIMEOUT_MS");
  ::unsetenv("RIPPLE_NET_REDIAL_MS");
  ::unsetenv("RIPPLE_NET_QUEUE_WAIT_MS");
  const NetTuning defaults = resolveNetTuning(NetTuning{});
  EXPECT_EQ(defaults.timeoutMs, 0);  // Zero = keep built-in defaults.
  EXPECT_EQ(defaults.redialMs, 0);
  EXPECT_EQ(defaults.queueWaitMs, 0);
}

TEST(FailoverTuning, EnvTimeoutsReachTheLoopbackClient) {
  ::setenv("RIPPLE_NET_TIMEOUT_MS", "1234", 1);
  ::setenv("RIPPLE_NET_REDIAL_MS", "321", 1);
  ::unsetenv("RIPPLE_REMOTE_ENDPOINTS");
  auto store = std::dynamic_pointer_cast<RemoteStore>(
      makeRemoteStoreFromEnv(/*containers=*/2));
  ASSERT_TRUE(store);
  EXPECT_EQ(store->client().options().connectTimeoutMs, 1234);
  EXPECT_EQ(store->client().options().requestTimeoutMs, 1234);
  EXPECT_EQ(store->client().options().redialTimeoutMs, 321);
  store->shutdown();
  ::unsetenv("RIPPLE_NET_TIMEOUT_MS");
  ::unsetenv("RIPPLE_NET_REDIAL_MS");
}

}  // namespace
}  // namespace ripple::net
