// RemoteQueuing behaviors beyond the shared queue-set conformance suite:
// close() idempotence (including from another driver and with the server
// already gone), clean worker termination when a server shuts down while
// readers are blocked mid-read (no hang, no spurious throw), and stealing
// / takeover reads across the wire.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "kvstore/partitioned_store.h"
#include "mq/queue.h"
#include "net/remote_queue.h"
#include "net/remote_store.h"
#include "net/server.h"

namespace ripple::net {
namespace {

using namespace std::chrono_literals;

struct Rig {
  kv::KVStorePtr hosted;
  std::unique_ptr<Server> server;
  RemoteStorePtr store;
  mq::QueuingPtr queuing;
  kv::TablePtr placement;

  explicit Rig(std::uint32_t parts) {
    hosted = kv::PartitionedStore::create(parts);
    Server::Options so;
    so.hosted = hosted;
    server = std::make_unique<Server>(std::move(so));
    server->start();
    RemoteStore::Options ro;
    ro.client.endpoints = {Endpoint{"127.0.0.1", server->port()}};
    store = RemoteStore::create(std::move(ro));
    queuing = makeRemoteQueuing(store);
    kv::TableOptions topts;
    topts.parts = parts;
    placement = store->createTable("placement", std::move(topts));
  }

  ~Rig() {
    store->shutdown();
    server->stop();
  }
};

TEST(RemoteQueue, CloseIsIdempotentAndCrossDriver) {
  Rig rig(2);
  auto set = rig.queuing->createQueueSet("q", rig.placement);
  ASSERT_TRUE(set->put(0, "m"));
  set->close();
  set->close();  // Idempotent.
  EXPECT_FALSE(set->put(0, "late"));

  // A second driver closing the same (already closed) server-side set is
  // equally a no-op — close is a broadcastable, repeatable signal.
  {
    RemoteStore::Options ro;
    ro.client.endpoints = {Endpoint{"127.0.0.1", rig.server->port()}};
    auto store2 = RemoteStore::create(std::move(ro));
    ByteWriter w;
    w.putBytes(std::string("q"));
    EXPECT_NO_THROW((void)store2->client().call(0, Opcode::kQueueClose,
                                                w.view(), fault::Op::kEnqueue,
                                                "q", 0));
    store2->shutdown();
  }

  // The buffered message still drains after close.
  int drained = 0;
  set->runWorkers([&](mq::WorkerContext& ctx) {
    while (auto msg = ctx.read(100ms)) {
      EXPECT_EQ(*msg, "m");
      ++drained;
    }
  });
  EXPECT_EQ(drained, 1);
}

TEST(RemoteQueue, CloseAfterServerGoneDoesNotThrow) {
  auto hosted = kv::PartitionedStore::create(2);
  Server::Options so;
  so.hosted = hosted;
  auto server = std::make_unique<Server>(std::move(so));
  server->start();
  RemoteStore::Options ro;
  ro.client.endpoints = {Endpoint{"127.0.0.1", server->port()}};
  ro.client.retry.initialBackoffMs = 0.05;
  ro.client.retry.maxBackoffMs = 0.2;
  auto store = RemoteStore::create(std::move(ro));
  auto queuing = makeRemoteQueuing(store);
  kv::TableOptions topts;
  topts.parts = 2;
  auto placement = store->createTable("placement", std::move(topts));
  auto set = queuing->createQueueSet("q", placement);

  server->stop();
  server.reset();
  EXPECT_NO_THROW(set->close());     // Best-effort against a dead server.
  EXPECT_FALSE(set->put(0, "m"));    // Rejected, not thrown.
  store->shutdown();
}

// The shutdown-while-busy contract (DESIGN.md §11): workers blocked in
// WorkerContext::read when their server stops observe a clean EOF and
// terminate as if the set had been closed — runWorkers returns, nothing
// hangs, nothing throws.
TEST(RemoteQueue, ServerShutdownUnblocksBusyReaders) {
  Rig rig(3);
  auto set = rig.queuing->createQueueSet("q", rig.placement);
  ASSERT_TRUE(set->put(0, "first"));

  std::atomic<int> received{0};
  std::atomic<bool> workersDone{false};
  std::thread runner([&] {
    set->runWorkers([&](mq::WorkerContext& ctx) {
      // Far longer than the test: only the server's shutdown EOF can end
      // these reads early.
      while (auto msg = ctx.read(60s)) {
        received.fetch_add(1);
      }
    });
    workersDone.store(true);
  });

  // Let the workers drain the first message and settle into blocked reads
  // (server-side bounded waits), then stop the server under them.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (received.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(received.load(), 1);
  std::this_thread::sleep_for(20ms);  // Workers now mid-read.
  rig.server->stop();

  runner.join();
  EXPECT_TRUE(workersDone.load());
  EXPECT_EQ(received.load(), 1);
}

TEST(RemoteQueue, StealAndTakeoverCrossTheWire) {
  Rig rig(2);
  auto set = rig.queuing->createQueueSet("q", rig.placement);
  ASSERT_TRUE(set->put(0, "a"));
  ASSERT_TRUE(set->put(0, "b"));

  std::atomic<bool> stolen{false};
  std::atomic<bool> takenOver{false};
  set->runWorkers([&](mq::WorkerContext& ctx) {
    if (ctx.queueIndex() != 1) {
      return;  // Queue 0's owner exits; its messages are only reachable
               // via steal/takeover from worker 1.
    }
    // Steal takes from the back; takeover reads from the front.
    if (auto msg = ctx.trySteal(0)) {
      EXPECT_EQ(*msg, "b");
      stolen.store(true);
    }
    if (auto msg = ctx.tryReadFrom(0)) {
      EXPECT_EQ(*msg, "a");
      takenOver.store(true);
    }
    EXPECT_EQ(ctx.trySteal(1), std::nullopt);     // Own queue: refused.
    EXPECT_EQ(ctx.tryReadFrom(99), std::nullopt); // Out of range: refused.
  });
  EXPECT_TRUE(stolen.load());
  EXPECT_TRUE(takenOver.load());
}

TEST(RemoteQueue, MultiplexedWorkerServesAllQueues) {
  Rig rig(4);
  auto set = rig.queuing->createQueueSet("q", rig.placement);
  for (std::uint32_t q = 0; q < 4; ++q) {
    ASSERT_TRUE(set->put(q, "m" + std::to_string(q)));
  }
  set->close();
  std::atomic<int> received{0};
  std::set<std::uint32_t> workerIds;
  std::mutex mu;
  set->runWorkers(
      [&](mq::WorkerContext& ctx) {
        {
          std::lock_guard<std::mutex> lock(mu);
          workerIds.insert(ctx.queueIndex());
        }
        while (auto msg = ctx.read(500ms)) {
          received.fetch_add(1);
        }
      },
      2);  // Two workers own striped queues {0,2} and {1,3}.
  EXPECT_EQ(received.load(), 4);
  EXPECT_EQ(workerIds.size(), 2u);
}

}  // namespace
}  // namespace ripple::net
