// Frame codec conformance: golden header bytes, incremental decode under
// adversarial chunking (split/coalesced partial reads), and rejection of
// malformed input — bad magic, unknown version, invalid opcode, oversized
// length — as FrameError without undefined behavior.  The fuzz legs are
// seeded and deterministic; run under RIPPLE_SANITIZE=address/thread they
// double as a memory-safety proof of the decoder.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "net/frame.h"

namespace ripple::net {
namespace {

Bytes bytesOf(std::initializer_list<unsigned> raw) {
  Bytes out;
  for (const unsigned b : raw) {
    out.push_back(static_cast<char>(static_cast<unsigned char>(b)));
  }
  return out;
}

// ---------------------------------------------------------------------
// Golden bytes: the exact header layout is a cross-version contract.
// ---------------------------------------------------------------------

TEST(FrameCodec, GoldenHeaderBytes) {
  const Bytes frame =
      encodeFrame(Opcode::kPing, kFlagError, 0x1122334455667788ull, "hi");
  EXPECT_EQ(frame, bytesOf({
                       0x52, 0x70, 0x70, 0x31,  // magic "Rpp1" LE
                       0x01,                    // version
                       0x01,                    // opcode kPing
                       0x01, 0x00,              // flags (kFlagError) LE
                       0x88, 0x77, 0x66, 0x55,  // request id LE
                       0x44, 0x33, 0x22, 0x11,
                       0x02, 0x00, 0x00, 0x00,  // payload length LE
                       'h', 'i',                // payload
                   }));
  EXPECT_EQ(frame.size(), kHeaderBytes + 2);
}

TEST(FrameCodec, RoundTripSingleFrame) {
  FrameDecoder decoder;
  decoder.feed(encodeFrame(Opcode::kGet, 0, 42, "payload"));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->opcode, static_cast<std::uint8_t>(Opcode::kGet));
  EXPECT_EQ(frame->flags, 0);
  EXPECT_EQ(frame->requestId, 42u);
  EXPECT_EQ(frame->payload, "payload");
  EXPECT_FALSE(frame->isError());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  FrameDecoder decoder;
  decoder.feed(encodeFrame(Opcode::kShutdown, 0, 7, ""));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "");
}

// ---------------------------------------------------------------------
// Adversarial chunking.
// ---------------------------------------------------------------------

TEST(FrameCodec, OneByteAtATime) {
  const Bytes wire = encodeFrame(Opcode::kPut, 0, 9, "split me");
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(BytesView(wire).substr(i, 1));
    EXPECT_EQ(decoder.next(), std::nullopt) << "frame complete too early";
  }
  decoder.feed(BytesView(wire).substr(wire.size() - 1, 1));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "split me");
}

TEST(FrameCodec, CoalescedFramesDecodeInOrder) {
  Bytes wire;
  for (std::uint64_t id = 0; id < 5; ++id) {
    wire += encodeFrame(Opcode::kPing, 0, id, "m" + std::to_string(id));
  }
  FrameDecoder decoder;
  decoder.feed(wire);
  for (std::uint64_t id = 0; id < 5; ++id) {
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->requestId, id);
    EXPECT_EQ(frame->payload, "m" + std::to_string(id));
  }
  EXPECT_EQ(decoder.next(), std::nullopt);
}

TEST(FrameCodec, TruncatedFrameStaysPending) {
  const Bytes wire = encodeFrame(Opcode::kScanPart, 0, 3, "truncated");
  FrameDecoder decoder;
  decoder.feed(BytesView(wire).substr(0, wire.size() - 4));
  EXPECT_EQ(decoder.next(), std::nullopt);  // Needs more bytes, no throw.
  EXPECT_GT(decoder.buffered(), 0u);
}

TEST(FrameCodec, FuzzRandomChunkingRoundTrips) {
  // Deterministic fuzz: random frames, concatenated, re-fed in random
  // chunk sizes.  Every frame must come back byte-identical regardless of
  // how the "socket" fragmented the stream.
  std::mt19937_64 rng2(20260807);
  struct Expected {
    std::uint8_t opcode;
    std::uint16_t flags;
    std::uint64_t requestId;
    Bytes payload;
  };
  for (int round = 0; round < 20; ++round) {
    std::vector<Expected> expected;
    Bytes wire;
    std::uniform_int_distribution<int> opDist(1, 19);
    std::uniform_int_distribution<int> lenDist(0, 2000);
    std::uniform_int_distribution<int> byteDist(0, 255);
    const int frames = 1 + round % 7;
    for (int f = 0; f < frames; ++f) {
      Expected e;
      e.opcode = static_cast<std::uint8_t>(opDist(rng2));
      e.flags = (f % 2 == 0) ? 0 : kFlagError;
      e.requestId = rng2();
      const int len = lenDist(rng2);
      for (int i = 0; i < len; ++i) {
        e.payload.push_back(static_cast<char>(byteDist(rng2)));
      }
      wire += encodeFrame(static_cast<Opcode>(e.opcode), e.flags, e.requestId,
                          e.payload);
      expected.push_back(std::move(e));
    }

    FrameDecoder decoder;
    std::vector<Expected> got;
    std::size_t at = 0;
    std::uniform_int_distribution<std::size_t> chunkDist(1, 97);
    while (at < wire.size()) {
      const std::size_t n = std::min(chunkDist(rng2), wire.size() - at);
      decoder.feed(BytesView(wire).substr(at, n));
      at += n;
      while (auto frame = decoder.next()) {
        got.push_back(Expected{frame->opcode, frame->flags, frame->requestId,
                               std::move(frame->payload)});
      }
    }
    ASSERT_EQ(got.size(), expected.size()) << "round " << round;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].opcode, expected[i].opcode);
      EXPECT_EQ(got[i].flags, expected[i].flags);
      EXPECT_EQ(got[i].requestId, expected[i].requestId);
      EXPECT_EQ(got[i].payload, expected[i].payload);
    }
  }
}

// ---------------------------------------------------------------------
// Malformed input is rejected as FrameError, never UB.
// ---------------------------------------------------------------------

TEST(FrameCodec, BadMagicThrows) {
  Bytes wire = encodeFrame(Opcode::kPing, 0, 1, "");
  wire[0] = 'X';
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), FrameError);
}

TEST(FrameCodec, UnknownVersionThrows) {
  Bytes wire = encodeFrame(Opcode::kPing, 0, 1, "");
  wire[4] = 9;
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), FrameError);
}

TEST(FrameCodec, InvalidOpcodeThrows) {
  // 21 is one past kHello, the highest assigned opcode.
  for (const unsigned bad : {0u, 21u, 255u}) {
    Bytes wire = encodeFrame(Opcode::kPing, 0, 1, "");
    wire[5] = static_cast<char>(bad);
    FrameDecoder decoder;
    decoder.feed(wire);
    EXPECT_THROW((void)decoder.next(), FrameError) << bad;
  }
}

TEST(FrameCodec, OversizedLengthRejectedBeforePayloadArrives) {
  // Corrupt length must be rejected from the header alone — the decoder
  // must not wait for (or try to buffer) gigabytes.
  Bytes wire = encodeFrame(Opcode::kPing, 0, 1, "");
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  wire[16] = static_cast<char>(huge & 0xFF);
  wire[17] = static_cast<char>((huge >> 8) & 0xFF);
  wire[18] = static_cast<char>((huge >> 16) & 0xFF);
  wire[19] = static_cast<char>((huge >> 24) & 0xFF);
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), FrameError);
}

TEST(FrameCodec, FuzzGarbageNeverCrashes) {
  // Random garbage streams: the decoder must either report FrameError or
  // keep waiting — anything but UB (the sanitizer legs enforce that).
  std::mt19937_64 rng(424242);
  std::uniform_int_distribution<int> byteDist(0, 255);
  std::uniform_int_distribution<std::size_t> lenDist(1, 300);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    bool poisoned = false;
    for (int feeds = 0; feeds < 5 && !poisoned; ++feeds) {
      Bytes garbage;
      const std::size_t len = lenDist(rng);
      for (std::size_t i = 0; i < len; ++i) {
        garbage.push_back(static_cast<char>(byteDist(rng)));
      }
      decoder.feed(garbage);
      try {
        while (decoder.next()) {
        }
      } catch (const FrameError&) {
        poisoned = true;  // Expected: connection would be dropped.
      }
    }
  }
}

// ---------------------------------------------------------------------
// Error payloads.
// ---------------------------------------------------------------------

TEST(FrameCodec, ErrorPayloadRoundTripsEveryKind) {
  for (const ErrorKind kind :
       {ErrorKind::kRuntime, ErrorKind::kInvalidArgument,
        ErrorKind::kOutOfRange, ErrorKind::kLogic}) {
    const DecodedError decoded =
        decodeError(encodeError(kind, "what happened"));
    EXPECT_EQ(decoded.kind, kind);
    EXPECT_EQ(decoded.message, "what happened");
  }
}

TEST(FrameCodec, ThrowDecodedErrorMapsToStdTypes) {
  EXPECT_THROW(
      throwDecodedError({ErrorKind::kInvalidArgument, "m"}),
      std::invalid_argument);
  EXPECT_THROW(throwDecodedError({ErrorKind::kOutOfRange, "m"}),
               std::out_of_range);
  EXPECT_THROW(throwDecodedError({ErrorKind::kLogic, "m"}), std::logic_error);
  EXPECT_THROW(throwDecodedError({ErrorKind::kRuntime, "m"}),
               std::runtime_error);
}

TEST(FrameCodec, MalformedErrorPayloadDegradesToRuntime) {
  // An error path must not throw CodecError: truncated/garbage error
  // payloads degrade to kRuntime with a placeholder message.
  EXPECT_EQ(decodeError("").kind, ErrorKind::kRuntime);
  EXPECT_EQ(decodeError(bytesOf({0x02, 0xFF})).kind, ErrorKind::kRuntime);
  EXPECT_EQ(decodeError(bytesOf({0x63})).kind, ErrorKind::kRuntime);
}

}  // namespace
}  // namespace ripple::net
