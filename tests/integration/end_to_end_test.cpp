// Cross-layer integration: several programming models sharing one store
// and engine, PageRank implemented TWICE (apps layer and Graph EBSP
// layer) agreeing with each other, and the Fig. 2 layering exercised top
// to bottom.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "graph/pregel.h"
#include "kvstore/local_store.h"
#include "kvstore/partitioned_store.h"
#include "mapreduce/mapreduce.h"
#include "matrix/summa.h"
#include "obs/report.h"

namespace ripple {
namespace {

TEST(Integration, MultipleModelsShareOneStore) {
  auto store = kv::PartitionedStore::create(4);
  ebsp::Engine engine(store);

  // 1. MapReduce word count.
  {
    kv::TableOptions options;
    options.parts = 4;
    kv::TypedTable<std::string, std::string> input(
        store->createTable("wc_in", std::move(options)));
    input.put("d", "one two two");
    auto spec = mr::wordCountSpec("wc_in", "wc_out");
    mr::runMapReduce(engine, spec);
    kv::TypedTable<std::string, std::uint64_t> out(
        store->lookupTable("wc_out"));
    EXPECT_EQ(out.get("two"), 2u);
  }

  // 2. A SUMMA multiply on the same store/engine.
  {
    Rng rng(4);
    matrix::BlockMatrix a(2, 8);
    matrix::BlockMatrix b(2, 8);
    a.fillRandom(rng);
    b.fillRandom(rng);
    matrix::SummaOptions options;
    options.parts = 4;
    const matrix::SummaResult r = matrix::runSumma(engine, a, b, options);
    EXPECT_TRUE(r.c.approxEqual(matrix::BlockMatrix::multiplyReference(a, b),
                                1e-9));
  }

  // 3. PageRank on the same store/engine.
  {
    graph::PowerLawOptions gen;
    gen.vertices = 200;
    gen.edges = 1000;
    gen.seed = 8;
    const graph::Graph g = graph::generatePowerLaw(gen);
    apps::loadPageRankGraph(*store, "pr_graph", g, 4);
    apps::PageRankOptions options;
    options.iterations = 5;
    const apps::PageRankResult r = apps::runPageRank(engine, options);
    EXPECT_NEAR(r.rankSum, 1.0, 1e-9);
  }
}

/// PageRank as a Pregel vertex program (the Graph EBSP layer), checked
/// against the apps-layer implementation.
class PregelPageRank : public graph::VertexProgram<double, double> {
 public:
  PregelPageRank(std::size_t n, double damping, int iterations)
      : n_(static_cast<double>(n)), d_(damping), iterations_(iterations) {}

  void compute(Context& ctx, const std::vector<double>& messages) override {
    if (ctx.superstep() == 1) {
      ctx.setValue(1.0 / n_);
    } else {
      double sum = 0;
      for (const double m : messages) {
        sum += m;
      }
      const double sink =
          ctx.aggregateResult<double>("sink").value_or(0.0);
      ctx.setValue((1.0 - d_) / n_ + d_ * (sum + sink));
    }
    if (ctx.superstep() <= iterations_) {
      if (!ctx.outEdges().empty()) {
        ctx.sendToAllNeighbors(ctx.value() /
                               static_cast<double>(ctx.outEdges().size()));
      } else {
        ctx.aggregate<double>("sink", ctx.value() / n_);
      }
      // Not halting keeps every vertex enabled for the next superstep
      // (PageRank touches all vertices every iteration).
    } else {
      ctx.voteToHalt();
    }
  }

  bool hasCombiner() const override { return true; }
  double combine(graph::VertexId, const double& a, const double& b) override {
    return a + b;
  }

  std::vector<ebsp::AggregatorDecl> aggregators() const override {
    return {{"sink", ebsp::sumAggregator<double>()}};
  }

 private:
  double n_;
  double d_;
  int iterations_;
};

TEST(Integration, PregelPageRankAgreesWithAppsPageRank) {
  graph::PowerLawOptions gen;
  gen.vertices = 300;
  gen.edges = 1800;
  gen.seed = 77;
  const graph::Graph g = graph::generatePowerLaw(gen);
  const int iterations = 8;

  // Apps-layer (direct EBSP) ranks.
  const auto expected = apps::referencePageRank(g, 0.85, iterations);

  // Graph-EBSP-layer ranks.
  auto store = kv::PartitionedStore::create(4);
  graph::loadVertexTable<double>(*store, "verts", g, 4, 0.0);
  ebsp::Engine engine(store);
  PregelPageRank program(g.vertexCount(), 0.85, iterations);
  graph::PregelOptions options;
  options.vertexTable = "verts";
  runPregel(engine, program, options);

  kv::TypedTable<graph::VertexId, graph::VertexState<double>> table(
      store->lookupTable("verts"));
  for (graph::VertexId u = 0; u < g.vertexCount(); ++u) {
    EXPECT_NEAR(table.get(u)->value, expected[u], 1e-9) << "vertex " << u;
  }
}

TEST(Integration, SameWorkloadOnBothStores) {
  // The store-portability claim: an identical job runs on LocalStore and
  // PartitionedStore with identical results.
  graph::PowerLawOptions gen;
  gen.vertices = 150;
  gen.edges = 700;
  gen.seed = 55;
  const graph::Graph g = graph::generatePowerLaw(gen);

  auto runOn = [&](kv::KVStorePtr store) {
    apps::loadPageRankGraph(*store, "pr_graph", g, 3);
    ebsp::Engine engine(store);
    apps::PageRankOptions options;
    options.iterations = 6;
    apps::runPageRank(engine, options);
    return apps::readRanks(*store, "pr_graph", g.vertexCount());
  };
  const auto onLocal = runOn(kv::LocalStore::create());
  const auto onPartitioned = runOn(kv::PartitionedStore::create(3));
  for (std::size_t v = 0; v < g.vertexCount(); ++v) {
    EXPECT_NEAR(onLocal[v], onPartitioned[v], 1e-12);
  }
}

TEST(Integration, SsspThenPageRankOnSameGraphData) {
  // Two different analyses over the same logical graph, stored in
  // separate tables of one store ("running a new analysis need not
  // involve changing existing data").
  graph::PowerLawOptions gen;
  gen.vertices = 120;
  gen.edges = 500;
  gen.undirected = true;
  gen.seed = 66;
  const graph::Graph g = graph::generatePowerLaw(gen);

  auto store = kv::PartitionedStore::create(4);
  ebsp::Engine engine(store);

  apps::SsspOptions ssspOptions;
  ssspOptions.selective = true;
  ssspOptions.parts = 4;
  apps::SsspDriver driver(engine, ssspOptions);
  driver.loadGraph(g);
  driver.initialize();
  const auto dist = driver.distances(g.vertexCount());
  const auto bfs = graph::bfsDistances(g, 0);
  for (std::size_t v = 0; v < bfs.size(); ++v) {
    EXPECT_EQ(dist[v], bfs[v] < 0 ? apps::kSsspInf : bfs[v]);
  }

  apps::loadPageRankGraph(*store, "pr_graph", g, 4);
  apps::PageRankOptions prOptions;
  prOptions.iterations = 4;
  const apps::PageRankResult pr = apps::runPageRank(engine, prOptions);
  EXPECT_NEAR(pr.rankSum, 1.0, 1e-9);

  // The SSSP state table is untouched by the PageRank run.
  EXPECT_EQ(driver.distances(g.vertexCount()), dist);
}

TEST(Integration, PageRankRoundAccountingFromRunReportAlone) {
  // The paper's Table 1 claim, verified mechanically: the fused (direct)
  // PageRank variant costs 1 synchronization + 1 I/O round per iteration
  // of the ranking equations, while the MapReduce emulation costs 2 + 2.
  // Everything below is asserted against a serialized-and-reparsed
  // RunReport — the run itself is not consulted.
  graph::PowerLawOptions gen;
  gen.vertices = 200;
  gen.edges = 900;
  gen.seed = 31;
  const graph::Graph g = graph::generatePowerLaw(gen);
  const int iterations = 6;

  auto captureReport = [&](bool mapReduceVariant) {
    obs::Tracer tracer;
    obs::MetricsRegistry registry;
    auto store = kv::PartitionedStore::create(4);
    store->metrics().bindRegistry(registry);
    apps::loadPageRankGraph(*store, "pr_graph", g, 4);
    ebsp::EngineOptions eopts;
    eopts.tracer = &tracer;
    eopts.metrics = &registry;
    ebsp::Engine engine(store, eopts);
    apps::PageRankOptions options;
    options.iterations = iterations;
    options.mapReduceVariant = mapReduceVariant;
    apps::runPageRank(engine, options);
    const obs::RunReport live = obs::RunReport::capture(
        mapReduceVariant ? "mapreduce" : "fused", &registry, &tracer);
    // Round-trip through JSON: the assertions read the document a bench's
    // --report flag would have written, not the in-memory run.
    return obs::RunReport::fromJson(obs::JsonValue::parse(
        live.toJson().dump(2)));
  };

  const obs::RunReport fused = captureReport(false);
  const obs::RunReport mapreduce = captureReport(true);
  const auto iters = static_cast<std::uint64_t>(iterations);

  // Fused: one superstep per iteration plus a single epilogue step that
  // persists the final ranks; every step is both a sync round and an I/O
  // round (the first reads state, the middle ones shuffle messages, the
  // last writes state).
  EXPECT_EQ(fused.syncRounds(), iters + 1);
  EXPECT_EQ(fused.ioRounds(), iters + 1);
  EXPECT_EQ(fused.metrics.counters.at("ebsp.steps"), iters + 1);

  // MapReduce emulation: a map step (state read + shuffle) and a reduce
  // step (state write) per iteration — twice the rounds.
  EXPECT_EQ(mapreduce.syncRounds(), 2 * iters);
  EXPECT_EQ(mapreduce.ioRounds(), 2 * iters);
  EXPECT_EQ(mapreduce.metrics.counters.at("ebsp.steps"), 2 * iters);

  // Per iteration of the ranking equations the emulation pays ~2x of
  // both round kinds (the fused variant's +1 epilogue is its only
  // overhead) — "purely inferior; doing strictly more work".
  EXPECT_EQ(mapreduce.syncRounds(), 2 * (fused.syncRounds() - 1));
  EXPECT_EQ(mapreduce.ioRounds(), 2 * (fused.ioRounds() - 1));

  // The report also carries the engine and store counters.
  EXPECT_GT(fused.metrics.counters.at("ebsp.invocations"), 0u);
  EXPECT_GT(fused.metrics.counters.at("ebsp.messages_sent"), 0u);
  EXPECT_GT(fused.metrics.counters.at("kv.local_ops"), 0u);
  EXPECT_EQ(fused.metrics.histograms.at("ebsp.step_seconds").count,
            iters + 1);

  // Structural span checks: one compute and one barrier span per step,
  // numbered 1..steps, plus exactly one load and one export span.
  EXPECT_EQ(fused.spanCount(obs::Phase::kCompute), iters + 1);
  EXPECT_EQ(fused.spanCount(obs::Phase::kLoad), 1u);
  EXPECT_EQ(fused.spanCount(obs::Phase::kExport), 1u);
  EXPECT_EQ(mapreduce.spanCount(obs::Phase::kCompute), 2 * iters);
}

TEST(Integration, ConsecutiveJobsDoNotLeakTables) {
  auto store = kv::PartitionedStore::create(2);
  ebsp::Engine engine(store);
  for (int round = 0; round < 5; ++round) {
    Rng rng(static_cast<std::uint64_t>(round));
    matrix::BlockMatrix a(2, 4);
    matrix::BlockMatrix b(2, 4);
    a.fillRandom(rng);
    b.fillRandom(rng);
    matrix::SummaOptions options;
    options.parts = 2;
    options.synchronized = round % 2 == 0;
    matrix::runSumma(engine, a, b, options);  // Drops its state table.
  }
  EXPECT_EQ(store->lookupTable("summa_state"), nullptr);
}

}  // namespace
}  // namespace ripple
