// k-means clustering as a single iterated EBSP job — shows three Ripple
// features working together that MapReduce handles awkwardly:
//   * per-component private state (each point keeps its assignment),
//   * broadcast data (the immutable initial centroids, in a ubiquitous
//     table),
//   * individual aggregators (per-cluster coordinate sums, readable the
//     following step — so centroid updates need no extra jobs and no
//     extra I/O rounds).
//
// Usage: kmeans [points] [clusters] [iterations]

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "common/random.h"
#include "ebsp/job.h"
#include "kvstore/store_factory.h"
#include "kvstore/store_util.h"

using namespace ripple;

namespace {

struct Point {
  double x = 0;
  double y = 0;
  std::int32_t cluster = -1;

  void encodeTo(ByteWriter& w) const {
    w.putDouble(x);
    w.putDouble(y);
    w.putVarintSigned(cluster);
  }
  static Point decodeFrom(ByteReader& r) {
    Point p;
    p.x = r.getDouble();
    p.y = r.getDouble();
    p.cluster = static_cast<std::int32_t>(r.getVarintSigned());
    return p;
  }
};

std::string clusterAggName(int c) { return "cluster" + std::to_string(c); }

// Aggregator payload: {sum x, sum y, count}.
ebsp::RawAggregatorPtr centroidAggregator() {
  return ebsp::makeAggregator<std::vector<double>>(
      std::vector<double>{0, 0, 0},
      [](std::vector<double> a, const std::vector<double>& b) {
        for (std::size_t i = 0; i < a.size(); ++i) {
          a[i] += b[i];
        }
        return a;
      });
}

class KMeansCompute : public ebsp::Compute<std::uint32_t, Point, std::uint8_t> {
 public:
  KMeansCompute(int clusters, int iterations)
      : clusters_(clusters), iterations_(iterations) {}

  bool compute(Context& ctx) override {
    Point p = ctx.readState().value();
    // Current centroids: previous step's aggregates, or the broadcast
    // initial centroids in step 1.
    std::int32_t best = -1;
    double bestDist = 1e300;
    for (int c = 0; c < clusters_; ++c) {
      double cx;
      double cy;
      if (ctx.stepNum() == 1) {
        const auto init =
            ctx.broadcast<std::pair<double, double>>(std::uint32_t(c));
        cx = init->first;
        cy = init->second;
      } else {
        const auto sums =
            ctx.aggregateResult<std::vector<double>>(clusterAggName(c));
        if (!sums || (*sums)[2] == 0) {
          continue;  // Empty cluster keeps no pull this round.
        }
        cx = (*sums)[0] / (*sums)[2];
        cy = (*sums)[1] / (*sums)[2];
      }
      const double d = (p.x - cx) * (p.x - cx) + (p.y - cy) * (p.y - cy);
      if (d < bestDist) {
        bestDist = d;
        best = c;
      }
    }
    if (best != p.cluster) {
      p.cluster = best;
      ctx.writeState(p);
    }
    ctx.aggregate(clusterAggName(best), std::vector<double>{p.x, p.y, 1.0});
    return ctx.stepNum() < iterations_;  // Stay enabled until done.
  }

 private:
  int clusters_;
  int iterations_;
};

class KMeansJob : public ebsp::Job<std::uint32_t, Point, std::uint8_t> {
 public:
  KMeansJob(int clusters, int iterations, kv::KVStore& store)
      : clusters_(clusters), iterations_(iterations), store_(store) {}

  std::vector<std::string> stateTableNames() const override {
    return {"km_points"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<KMeansCompute>(clusters_, iterations_);
  }
  std::vector<ebsp::AggregatorDecl> aggregators() const override {
    std::vector<ebsp::AggregatorDecl> decls;
    for (int c = 0; c < clusters_; ++c) {
      decls.push_back({clusterAggName(c), centroidAggregator()});
    }
    return decls;
  }
  std::string referenceTable() const override { return "km_points"; }
  std::string broadcastTable() const override { return "km_centroids"; }
  std::vector<ebsp::RawLoaderPtr> loaders() const override {
    kv::TablePtr points = store_.lookupTable("km_points");
    return {std::make_shared<ebsp::FunctionLoader>(
        [points](ebsp::LoaderContext& ctx) {
          for (auto& [k, v] : kv::readAll(*points)) {
            ctx.enableComponent(k);
          }
        })};
  }

 private:
  int clusters_;
  int iterations_;
  kv::KVStore& store_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t points = argc > 1 ? std::atoi(argv[1]) : 50'000;
  const int clusters = argc > 2 ? std::atoi(argv[2]) : 5;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 12;

  auto store = kv::makeStore(kv::StoreBackend::kDefault, 6);

  // Points: a mixture of `clusters` Gaussians-ish blobs.
  Rng rng(99);
  kv::TableOptions pointOptions;
  pointOptions.parts = 6;
  kv::TypedTable<std::uint32_t, Point> pointTable(
      store->createTable("km_points", pointOptions));
  for (std::uint32_t i = 0; i < points; ++i) {
    const int blob = static_cast<int>(i % static_cast<std::uint32_t>(clusters));
    Point p;
    p.x = blob * 10.0 + (rng.nextDouble() - 0.5) * 4.0;
    p.y = blob * -6.0 + (rng.nextDouble() - 0.5) * 4.0;
    pointTable.put(i, p);
  }

  // Immutable broadcast data: initial centroid guesses.
  kv::TableOptions centroidOptions;
  centroidOptions.ubiquitous = true;
  kv::TypedTable<std::uint32_t, std::pair<double, double>> centroids(
      store->createTable("km_centroids", centroidOptions));
  for (int c = 0; c < clusters; ++c) {
    centroids.put(static_cast<std::uint32_t>(c),
                  {c * 10.0 + 3.0, c * -6.0 - 2.0});
  }

  ebsp::Engine engine(store);
  KMeansJob job(clusters, iterations, *store);
  const ebsp::JobResult result = ebsp::runJob(engine, job);

  std::cout << "k-means: " << points << " points, " << clusters
            << " clusters, " << result.steps << " steps, "
            << std::fixed << std::setprecision(3) << result.elapsedSeconds
            << " s\nfinal centroids:\n" << std::setprecision(2);
  for (int c = 0; c < clusters; ++c) {
    const auto sums =
        result.aggregate<std::vector<double>>(clusterAggName(c));
    if (sums && (*sums)[2] > 0) {
      std::cout << "  c" << c << ": (" << (*sums)[0] / (*sums)[2] << ", "
                << (*sums)[1] / (*sums)[2] << ")  n=" << (*sums)[2] << "\n";
    }
  }
  return 0;
}
