// PageRank demo: ranks a random power-law graph with both the direct
// EBSP variant (one step per iteration) and the MapReduce-emulation
// variant (two steps per iteration), then compares their costs — a
// pocket-size version of the paper's Table I experiment.
//
// Usage: pagerank_demo [vertices] [edges] [iterations]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "apps/pagerank.h"
#include "kvstore/store_factory.h"

using namespace ripple;

int main(int argc, char** argv) {
  const std::size_t vertices =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::uint64_t edges =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 10;

  std::cout << "Generating power-law graph: " << vertices << " vertices, "
            << edges << " edges\n";
  graph::PowerLawOptions gen;
  gen.vertices = vertices;
  gen.edges = edges;
  gen.seed = 42;
  const graph::Graph g = graph::generatePowerLaw(gen);

  auto runVariant = [&](bool mapReduce) {
    auto store = kv::makeStore(kv::StoreBackend::kDefault, 6);
    apps::loadPageRankGraph(*store, "pr_graph", g, 6);
    ebsp::Engine engine(store);
    apps::PageRankOptions options;
    options.iterations = iterations;
    options.mapReduceVariant = mapReduce;
    const apps::PageRankResult r = apps::runPageRank(engine, options);
    std::cout << std::fixed << std::setprecision(3)
              << (mapReduce ? "  MapReduce variant: " : "  direct variant:    ")
              << r.job.elapsedSeconds << " s wall, " << r.job.steps
              << " steps, " << r.job.metrics.messagesSent << " messages, "
              << r.job.metrics.stateWrites << " state writes (rank sum "
              << std::setprecision(6) << r.rankSum << ")\n";
    return r;
  };

  std::cout << "Ranking with damping 0.85, " << iterations
            << " iterations:\n";
  const auto direct = runVariant(false);
  const auto mapred = runVariant(true);

  std::cout << std::setprecision(1)
            << "MapReduce/direct wall-clock ratio: "
            << 100.0 * mapred.job.elapsedSeconds / direct.job.elapsedSeconds -
                   100.0
            << "% slower (paper: direct 15-19% faster)\n";

  // Show the five highest-ranked vertices.
  auto store = kv::makeStore(kv::StoreBackend::kDefault, 6);
  apps::loadPageRankGraph(*store, "pr_graph", g, 6);
  ebsp::Engine engine(store);
  apps::PageRankOptions options;
  options.iterations = iterations;
  apps::runPageRank(engine, options);
  const std::vector<double> ranks =
      apps::readRanks(*store, "pr_graph", vertices);
  std::vector<std::size_t> order(vertices);
  for (std::size_t i = 0; i < vertices; ++i) {
    order[i] = i;
  }
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return ranks[a] > ranks[b];
                    });
  std::cout << "Top vertices by rank:\n" << std::setprecision(6);
  for (int i = 0; i < 5; ++i) {
    std::cout << "  #" << order[i] << "  rank " << ranks[order[i]] << "\n";
  }
  return 0;
}
