// Quickstart: the two faces of Ripple in ~100 lines.
//
//  1. A native K/V EBSP job — iterative "rumor spreading" over a ring,
//     showing components, messages, state, and an aggregator.
//  2. The MapReduce layer — word count, showing that classic MR is just a
//     two-step EBSP job.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "ebsp/job.h"
#include "kvstore/store_factory.h"
#include "kvstore/store_util.h"
#include "mapreduce/mapreduce.h"

using namespace ripple;

namespace {

// ---------------------------------------------------------------------
// Part 1: a native EBSP job.
//
// N components sit in a ring.  Component 0 starts a rumor; each step,
// every component that knows the rumor forwards it to its successor.
// The "informed" aggregator counts how many components learned it each
// step; the job ends when the rumor has gone all the way around.
// ---------------------------------------------------------------------

struct RumorCompute : ebsp::Compute<int, bool, std::string> {
  explicit RumorCompute(int n) : n_(n) {}

  bool compute(Context& ctx) override {
    if (ctx.readState().value_or(false)) {
      return false;  // Already informed earlier; nothing new to do.
    }
    ctx.writeState(true);
    ctx.aggregate("informed", std::uint64_t{1});
    const std::string& rumor = ctx.inputMessages().front();
    const int next = (ctx.key() + 1) % n_;
    if (next != 0) {
      ctx.sendMessage(next, rumor);
    }
    return false;
  }

 private:
  int n_;
};

struct RumorJob : ebsp::Job<int, bool, std::string> {
  explicit RumorJob(int n) : n_(n) {}

  std::vector<std::string> stateTableNames() const override {
    return {"rumor_state"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<RumorCompute>(n_);
  }
  std::vector<ebsp::AggregatorDecl> aggregators() const override {
    return {{"informed", ebsp::countAggregator()}};
  }
  std::string referenceTable() const override { return "rumor_state"; }
  std::vector<ebsp::RawLoaderPtr> loaders() const override {
    auto loader = std::make_shared<ebsp::VectorLoader>();
    loader->message(encodeToBytes(0), encodeToBytes(std::string(
                                          "ripple fuses reduce with map")));
    return {loader};
  }

 private:
  int n_;
};

void runRumor(ebsp::Engine& engine, kv::KVStore& store) {
  constexpr int kRingSize = 16;
  kv::TableOptions options;
  options.parts = 4;
  store.createTable("rumor_state", options);

  RumorJob job(kRingSize);
  const ebsp::JobResult result = ebsp::runJob(engine, job);

  std::cout << "[rumor] steps=" << result.steps
            << " components informed=" << kRingSize
            << " messages=" << result.metrics.messagesSent << "\n";
}

// ---------------------------------------------------------------------
// Part 2: MapReduce on the same store and engine.
// ---------------------------------------------------------------------

void runWordCount(ebsp::Engine& engine, kv::KVStore& store) {
  kv::TableOptions options;
  options.parts = 4;
  kv::TypedTable<std::string, std::string> docs(
      store.createTable("wc_input", options));
  docs.put("doc1", "the quick brown fox jumps over the lazy dog");
  docs.put("doc2", "the dog barks and the fox runs");
  docs.put("doc3", "quick quick slow");

  auto spec = mr::wordCountSpec("wc_input", "wc_output");
  const mr::MapReduceResult result = mr::runMapReduce(engine, spec);

  kv::TypedTable<std::string, std::uint64_t> counts(
      store.lookupTable("wc_output"));
  std::cout << "[wordcount] distinct words=" << result.outputPairs
            << "  the=" << counts.get("the").value_or(0)
            << " quick=" << counts.get("quick").value_or(0)
            << " fox=" << counts.get("fox").value_or(0) << "\n";
}

}  // namespace

int main() {
  // A parallel in-process store with 4 containers; swap in
  // kv::LocalStore::create() for single-threaded debugging.
  auto store = kv::makeStore(kv::StoreBackend::kDefault, 4);
  ebsp::Engine engine(store);

  runRumor(engine, *store);
  runWordCount(engine, *store);

  std::cout << "quickstart done\n";
  return 0;
}
