// SUMMA matrix multiplication demo: multiplies two block matrices with
// the BSPified (synchronized) schedule and with the no-sync execution
// strategy, verifies both against a serial reference, and reports the
// virtual-cluster makespans — the paper's §V-B experiment in miniature.
//
// Usage: summa_matmul [grid] [blockSize]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "kvstore/store_factory.h"
#include "matrix/summa.h"
#include "matrix/summa_schedule.h"

using namespace ripple;

int main(int argc, char** argv) {
  const auto grid = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 3);
  const auto blockSize =
      static_cast<std::size_t>(argc > 2 ? std::atoi(argv[2]) : 128);

  std::cout << "C <- A x B on a " << grid << "x" << grid << " grid of "
            << blockSize << "x" << blockSize << " blocks\n";

  Rng rng(7);
  matrix::BlockMatrix a(grid, blockSize);
  matrix::BlockMatrix b(grid, blockSize);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const matrix::BlockMatrix expected = matrix::BlockMatrix::multiplyReference(a, b);

  auto runVariant = [&](bool synchronized) {
    auto store = kv::makeStore(kv::StoreBackend::kDefault, grid * grid);
    ebsp::Engine engine(store);
    matrix::SummaOptions options;
    options.synchronized = synchronized;
    options.parts = grid * grid;  // One component per virtual processor.
    const matrix::SummaResult r = matrix::runSumma(engine, a, b, options);
    const bool ok = r.c.approxEqual(expected, 1e-9);
    std::cout << std::fixed << std::setprecision(4)
              << (synchronized ? "  synchronized: " : "  no-sync:      ")
              << r.job.virtualMakespan << " s virtual makespan, "
              << r.job.elapsedSeconds << " s wall, steps=" << r.job.steps
              << (ok ? "  [verified]" : "  [MISMATCH!]") << "\n";
    return r.job.virtualMakespan;
  };

  const double syncTime = runVariant(true);
  const double asyncTime = runVariant(false);
  const auto schedule = matrix::simulateSummaSchedule(grid);
  std::cout << std::setprecision(2)
            << "sync/no-sync makespan ratio: " << syncTime / asyncTime
            << " (schedule bound " << schedule.slowdownFactor(grid)
            << ", paper measured 90s/51s = 1.76 for grid 3)\n";
  return 0;
}
