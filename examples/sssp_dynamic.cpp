// Dynamic single-source shortest paths demo: maintains hop distances on
// a time-varying graph with the selective-enablement variant and the
// full-scan (MapReduce-style) variant — the paper's §V-C experiment in
// miniature.
//
// Usage: sssp_dynamic [vertices] [edges] [batches] [changesPerBatch]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "apps/sssp.h"
#include "kvstore/store_factory.h"

using namespace ripple;

int main(int argc, char** argv) {
  const std::size_t vertices =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10'000;
  const std::uint64_t edges =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 180'000;
  const int batches = argc > 3 ? std::atoi(argv[3]) : 10;
  const std::size_t perBatch =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1000;

  graph::PowerLawOptions gen;
  gen.vertices = vertices;
  gen.edges = edges;
  gen.undirected = true;
  gen.seed = 11;
  graph::Graph g = graph::generatePowerLaw(gen);
  std::cout << "Undirected power-law graph: " << vertices << " vertices, "
            << g.edges << " edges; " << batches << " batches of " << perBatch
            << " changes\n";

  // Pre-generate identical change batches for both variants.
  Rng rng(123);
  std::vector<std::vector<graph::GraphChange>> changeBatches;
  for (int i = 0; i < batches; ++i) {
    changeBatches.push_back(
        graph::randomChangeBatch(vertices, perBatch, 1.8, rng));
  }

  auto runVariant = [&](bool selective) {
    auto store = kv::makeStore(kv::StoreBackend::kDefault, 6);
    ebsp::Engine engine(store);
    apps::SsspOptions options;
    options.selective = selective;
    options.source = 0;
    options.parts = 6;
    apps::SsspDriver driver(engine, options);
    driver.loadGraph(g);
    driver.initialize();

    apps::SsspUpdateStats total;
    for (const auto& batch : changeBatches) {
      const apps::SsspUpdateStats s = driver.applyBatch(batch);
      total.jobs += s.jobs;
      total.steps += s.steps;
      total.invocations += s.invocations;
      total.messages += s.messages;
      total.elapsedSeconds += s.elapsedSeconds;
      total.virtualMakespan += s.virtualMakespan;
    }
    std::cout << std::fixed << std::setprecision(3)
              << (selective ? "  selective enablement: " : "  full scan:            ")
              << total.elapsedSeconds << " s for all batches ("
              << total.invocations << " compute invocations, "
              << total.messages << " messages, " << total.jobs << " jobs)\n";
    return total.elapsedSeconds;
  };

  const double selectiveTime = runVariant(true);
  const double fullTime = runVariant(false);
  std::cout << std::setprecision(0)
            << "full-scan/selective ratio: " << fullTime / selectiveTime
            << "x (paper: 78 s vs 0.21 s = ~370x)\n";
  return 0;
}
