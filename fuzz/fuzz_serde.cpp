// Fuzz the ByteReader/ByteWriter serde: a decode schedule driven by the
// fuzz input runs against the input's own tail as the buffer.  Every
// decode must either succeed or throw CodecError — underruns, malformed
// varints, and absurd length prefixes must never read out of bounds.
// Values that decode are re-encoded and re-decoded to check round-trips.

#include <cstdint>
#include <vector>

#include "common/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) {
    return 0;
  }
  // First byte: how many ops of the schedule to run.  Second onwards:
  // op codes, then the remainder is the buffer being decoded.
  const std::size_t ops = 1 + data[0] % 16;
  if (size < 1 + ops) {
    return 0;
  }
  const std::uint8_t* schedule = data + 1;
  const char* buf = reinterpret_cast<const char*>(data + 1 + ops);
  const std::size_t bufSize = size - 1 - ops;

  ripple::ByteReader reader{ripple::BytesView(buf, bufSize)};
  ripple::ByteWriter writer;
  try {
    for (std::size_t i = 0; i < ops; ++i) {
      switch (schedule[i] % 8) {
        case 0:
          writer.putU8(reader.getU8());
          break;
        case 1:
          writer.putFixed32(reader.getFixed32());
          break;
        case 2:
          writer.putFixed64(reader.getFixed64());
          break;
        case 3:
          writer.putVarint(reader.getVarint());
          break;
        case 4:
          writer.putVarintSigned(reader.getVarintSigned());
          break;
        case 5:
          writer.putDouble(reader.getDouble());
          break;
        case 6:
          writer.putBool(reader.getBool());
          break;
        case 7:
          writer.putBytes(reader.getBytes());
          break;
      }
    }
  } catch (const ripple::CodecError&) {
    return 0;  // Underrun or malformed varint correctly rejected.
  }

  // Re-decode what was re-encoded with the same schedule; values must
  // survive.  (putBool normalizes any nonzero byte to 1 and doubles are
  // bit-copied, so compare the re-encoding of the re-decode instead of
  // the original buffer.)
  const ripple::Bytes first = writer.take();
  ripple::ByteReader reader2{ripple::BytesView(first)};
  ripple::ByteWriter writer2;
  try {
    for (std::size_t i = 0; i < ops; ++i) {
      switch (schedule[i] % 8) {
        case 0:
          writer2.putU8(reader2.getU8());
          break;
        case 1:
          writer2.putFixed32(reader2.getFixed32());
          break;
        case 2:
          writer2.putFixed64(reader2.getFixed64());
          break;
        case 3:
          writer2.putVarint(reader2.getVarint());
          break;
        case 4:
          writer2.putVarintSigned(reader2.getVarintSigned());
          break;
        case 5:
          writer2.putDouble(reader2.getDouble());
          break;
        case 6:
          writer2.putBool(reader2.getBool());
          break;
        case 7:
          writer2.putBytes(reader2.getBytes());
          break;
      }
    }
  } catch (const ripple::CodecError&) {
    __builtin_trap();  // Own output failed to decode: a real serde bug.
  }
  if (writer2.view() != ripple::BytesView(first)) {
    __builtin_trap();  // Encode(decode(x)) not a fixed point: a real bug.
  }
  return 0;
}
