// Standalone driver for the fuzz harnesses when the toolchain lacks
// libFuzzer (GCC, or Clang without -fsanitize=fuzzer).  Each file named
// on the command line is fed to LLVMFuzzerTestOneInput once — enough to
// replay a corpus or a crash reproducer, and to keep the harnesses
// compiled and smoke-tested on every toolchain.
//
// Under Clang with RIPPLE_FUZZ=ON the real libFuzzer main is linked
// instead and this file is not built.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz driver: cannot open %s\n", argv[i]);
      return 1;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++ran;
  }
  std::printf("fuzz driver: replayed %d input(s) without crashing\n", ran);
  return 0;
}
