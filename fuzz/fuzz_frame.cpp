// Fuzz the net frame codec: arbitrary bytes through the incremental
// FrameDecoder, in adversarial chunk sizes, must either yield frames or
// throw FrameError — never crash, loop, or trip a sanitizer.  Decoded
// frames are re-encoded and re-decoded to check the round-trip.

#include <cstdint>
#include <cstring>
#include <vector>

#include "net/frame.h"

namespace {

/// Drive a decoder over `data` in chunks whose sizes are themselves taken
/// from the fuzz input, so split headers and coalesced frames both get
/// exercised.  Returns every decoded frame.
std::vector<ripple::net::Frame> decodeAll(const std::uint8_t* data,
                                          std::size_t size,
                                          std::size_t chunkSeed) {
  ripple::net::FrameDecoder decoder;
  std::vector<ripple::net::Frame> out;
  std::size_t pos = 0;
  while (pos < size) {
    // Chunk length cycles 1..17, perturbed by the seed byte.
    std::size_t chunk = 1 + (chunkSeed + pos) % 17;
    if (chunk > size - pos) {
      chunk = size - pos;
    }
    decoder.feed(ripple::BytesView(
        reinterpret_cast<const char*>(data + pos), chunk));
    pos += chunk;
    while (auto frame = decoder.next()) {
      out.push_back(std::move(*frame));
    }
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) {
    return 0;
  }
  const std::size_t chunkSeed = data[0];

  // Arbitrary bytes: anything goes as long as it is FrameError, not UB.
  std::vector<ripple::net::Frame> frames;
  try {
    frames = decodeAll(data + 1, size - 1, chunkSeed);
  } catch (const ripple::net::FrameError&) {
    return 0;  // Malformed input correctly rejected.
  }

  // Whatever decoded must round-trip bit-exactly.
  for (const ripple::net::Frame& f : frames) {
    const ripple::Bytes wire = ripple::net::encodeFrame(
        static_cast<ripple::net::Opcode>(f.opcode), f.flags, f.requestId,
        f.payload);
    ripple::net::FrameDecoder redecoder;
    redecoder.feed(wire);
    auto again = redecoder.next();
    if (!again || again->opcode != f.opcode || again->flags != f.flags ||
        again->requestId != f.requestId || again->payload != f.payload) {
      __builtin_trap();  // Round-trip mismatch: a real codec bug.
    }
  }

  // Error payload decoding must never throw, even on garbage.
  ripple::net::DecodedError err = ripple::net::decodeError(
      ripple::BytesView(reinterpret_cast<const char*>(data + 1), size - 1));
  (void)err;
  return 0;
}
