// Fuzz the log store's on-disk decoders (DESIGN.md §14): arbitrary bytes
// through record framing, part-log and manifest record decoding, manifest
// recovery, and sealed-segment validation must either decode or be
// rejected (nullopt / SegmentError) — never crash, over-read, or trip a
// sanitizer.  Whatever decodes must survive a re-encode round-trip:
// recovery correctness rests on these decoders, so a silent asymmetry
// here is a durability bug.

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "kvstore/manifest.h"
#include "kvstore/segment.h"

namespace ls = ripple::kv::logstore;

namespace {

void checkFrames(ripple::BytesView buf) {
  std::size_t pos = 0;
  while (auto frame = ls::readFrame(buf, pos)) {
    // Every framed payload goes through both record decoders; each must
    // reject or accept without UB, and an accepted record must re-encode
    // to a payload that decodes back to the same record.
    if (auto rec = ls::decodeLogRecord(frame->payload)) {
      const ripple::Bytes again =
          ls::encodeLogRecord(rec->op, rec->key, rec->value);
      auto redecoded = ls::decodeLogRecord(again);
      if (!redecoded || redecoded->op != rec->op ||
          redecoded->key != rec->key || redecoded->value != rec->value) {
        __builtin_trap();  // Log-record round-trip mismatch.
      }
    }
    if (auto rec = ls::decodeManifestRecord(frame->payload)) {
      const ripple::Bytes again =
          rec->isCommit ? ls::encodeCommitRecord(rec->state)
                        : ls::encodeBeginRecord(rec->epoch);
      auto redecoded = ls::decodeManifestRecord(again);
      if (!redecoded || redecoded->isCommit != rec->isCommit ||
          redecoded->epoch != rec->epoch ||
          redecoded->state.tables.size() != rec->state.tables.size()) {
        __builtin_trap();  // Manifest-record round-trip mismatch.
      }
    }
    if (frame->end <= pos || frame->end > buf.size()) {
      __builtin_trap();  // Frame cursor must strictly advance in bounds.
    }
    pos = frame->end;
  }
}

void checkManifestRecovery(ripple::BytesView buf) {
  const ls::ManifestRecovery rec = ls::recoverManifest(buf);
  if (rec.validBytes > buf.size()) {
    __builtin_trap();  // Recovery claimed bytes past the input.
  }
  if (rec.hasCommit) {
    // The recovered state must re-encode into a manifest that recovers
    // to the same epoch — otherwise a store could not reopen its own
    // output after a crash.
    ripple::Bytes rebuilt;
    ls::appendFrame(rebuilt, ls::encodeCommitRecord(rec.state));
    const ls::ManifestRecovery again = ls::recoverManifest(rebuilt);
    if (!again.hasCommit || again.state.epoch != rec.state.epoch ||
        again.state.tables.size() != rec.state.tables.size()) {
      __builtin_trap();  // Manifest recovery round-trip mismatch.
    }
  } else if (rec.validBytes != 0) {
    __builtin_trap();  // No commit means no adoptable prefix.
  }
}

void checkSealedSegment(ripple::BytesView buf) {
  ls::SealedSegment segment;
  try {
    segment.openFromBytes(ripple::Bytes(buf));
  } catch (const ls::SegmentError&) {
    return;  // Corruption correctly rejected.
  }
  // A segment that validated must be fully readable: every entry in
  // strictly ascending key order and findable at its own key.
  std::vector<std::pair<ripple::Bytes, ripple::Bytes>> entries;
  entries.reserve(segment.count());
  for (std::uint64_t i = 0; i < segment.count(); ++i) {
    const auto [key, value] = segment.entry(i);
    if (!entries.empty() && ripple::BytesView(entries.back().first) >= key) {
      __builtin_trap();  // Key order violation survived validation.
    }
    auto found = segment.find(key);
    if (!found || *found != value) {
      __builtin_trap();  // Entry not findable at its own key.
    }
    entries.emplace_back(ripple::Bytes(key), ripple::Bytes(value));
  }
  // Re-encoding the entries must produce a valid segment with the same
  // content (not necessarily the same bytes: the input may carry slack
  // the encoder does not emit).
  ls::SealedSegment rebuilt;
  rebuilt.openFromBytes(ls::SealedSegment::encode(entries));
  if (rebuilt.count() != segment.count()) {
    __builtin_trap();  // Segment round-trip lost entries.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const ripple::BytesView buf(reinterpret_cast<const char*>(data), size);
  checkFrames(buf);
  checkManifestRecovery(buf);
  checkSealedSegment(buf);
  return 0;
}
