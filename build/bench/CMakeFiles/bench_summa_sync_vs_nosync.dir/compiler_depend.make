# Empty compiler generated dependencies file for bench_summa_sync_vs_nosync.
# This may be replaced when dependencies are built.
