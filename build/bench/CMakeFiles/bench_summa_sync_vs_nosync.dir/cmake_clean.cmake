file(REMOVE_RECURSE
  "CMakeFiles/bench_summa_sync_vs_nosync.dir/bench_summa_sync_vs_nosync.cpp.o"
  "CMakeFiles/bench_summa_sync_vs_nosync.dir/bench_summa_sync_vs_nosync.cpp.o.d"
  "bench_summa_sync_vs_nosync"
  "bench_summa_sync_vs_nosync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summa_sync_vs_nosync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
