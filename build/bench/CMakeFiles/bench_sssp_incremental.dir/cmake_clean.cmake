file(REMOVE_RECURSE
  "CMakeFiles/bench_sssp_incremental.dir/bench_sssp_incremental.cpp.o"
  "CMakeFiles/bench_sssp_incremental.dir/bench_sssp_incremental.cpp.o.d"
  "bench_sssp_incremental"
  "bench_sssp_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sssp_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
