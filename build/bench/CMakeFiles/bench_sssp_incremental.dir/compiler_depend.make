# Empty compiler generated dependencies file for bench_sssp_incremental.
# This may be replaced when dependencies are built.
