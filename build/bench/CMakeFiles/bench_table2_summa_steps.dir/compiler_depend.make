# Empty compiler generated dependencies file for bench_table2_summa_steps.
# This may be replaced when dependencies are built.
