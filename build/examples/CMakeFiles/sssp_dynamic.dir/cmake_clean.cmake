file(REMOVE_RECURSE
  "CMakeFiles/sssp_dynamic.dir/sssp_dynamic.cpp.o"
  "CMakeFiles/sssp_dynamic.dir/sssp_dynamic.cpp.o.d"
  "sssp_dynamic"
  "sssp_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
