# Empty compiler generated dependencies file for sssp_dynamic.
# This may be replaced when dependencies are built.
