file(REMOVE_RECURSE
  "CMakeFiles/summa_matmul.dir/summa_matmul.cpp.o"
  "CMakeFiles/summa_matmul.dir/summa_matmul.cpp.o.d"
  "summa_matmul"
  "summa_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summa_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
