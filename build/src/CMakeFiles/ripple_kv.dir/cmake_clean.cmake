file(REMOVE_RECURSE
  "CMakeFiles/ripple_kv.dir/kvstore/local_store.cpp.o"
  "CMakeFiles/ripple_kv.dir/kvstore/local_store.cpp.o.d"
  "CMakeFiles/ripple_kv.dir/kvstore/partitioned_store.cpp.o"
  "CMakeFiles/ripple_kv.dir/kvstore/partitioned_store.cpp.o.d"
  "CMakeFiles/ripple_kv.dir/kvstore/store_util.cpp.o"
  "CMakeFiles/ripple_kv.dir/kvstore/store_util.cpp.o.d"
  "CMakeFiles/ripple_kv.dir/kvstore/table_config.cpp.o"
  "CMakeFiles/ripple_kv.dir/kvstore/table_config.cpp.o.d"
  "libripple_kv.a"
  "libripple_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
