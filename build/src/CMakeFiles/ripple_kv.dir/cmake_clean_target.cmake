file(REMOVE_RECURSE
  "libripple_kv.a"
)
