# Empty dependencies file for ripple_kv.
# This may be replaced when dependencies are built.
