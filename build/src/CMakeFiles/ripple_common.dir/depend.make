# Empty dependencies file for ripple_common.
# This may be replaced when dependencies are built.
