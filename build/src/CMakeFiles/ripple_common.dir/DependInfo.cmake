
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/ripple_common.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/dyadic.cpp" "src/CMakeFiles/ripple_common.dir/common/dyadic.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/dyadic.cpp.o.d"
  "/root/repo/src/common/executor.cpp" "src/CMakeFiles/ripple_common.dir/common/executor.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/executor.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/ripple_common.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/ripple_common.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/ripple_common.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/random.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/ripple_common.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/ripple_common.dir/common/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
