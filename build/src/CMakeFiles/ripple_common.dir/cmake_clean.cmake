file(REMOVE_RECURSE
  "CMakeFiles/ripple_common.dir/common/bytes.cpp.o"
  "CMakeFiles/ripple_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/ripple_common.dir/common/dyadic.cpp.o"
  "CMakeFiles/ripple_common.dir/common/dyadic.cpp.o.d"
  "CMakeFiles/ripple_common.dir/common/executor.cpp.o"
  "CMakeFiles/ripple_common.dir/common/executor.cpp.o.d"
  "CMakeFiles/ripple_common.dir/common/hash.cpp.o"
  "CMakeFiles/ripple_common.dir/common/hash.cpp.o.d"
  "CMakeFiles/ripple_common.dir/common/logging.cpp.o"
  "CMakeFiles/ripple_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/ripple_common.dir/common/random.cpp.o"
  "CMakeFiles/ripple_common.dir/common/random.cpp.o.d"
  "CMakeFiles/ripple_common.dir/common/stats.cpp.o"
  "CMakeFiles/ripple_common.dir/common/stats.cpp.o.d"
  "libripple_common.a"
  "libripple_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
