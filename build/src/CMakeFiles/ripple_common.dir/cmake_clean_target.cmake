file(REMOVE_RECURSE
  "libripple_common.a"
)
