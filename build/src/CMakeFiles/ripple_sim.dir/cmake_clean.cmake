file(REMOVE_RECURSE
  "CMakeFiles/ripple_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/ripple_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/ripple_sim.dir/sim/virtual_time.cpp.o"
  "CMakeFiles/ripple_sim.dir/sim/virtual_time.cpp.o.d"
  "libripple_sim.a"
  "libripple_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
