file(REMOVE_RECURSE
  "CMakeFiles/ripple_apps.dir/apps/pagerank.cpp.o"
  "CMakeFiles/ripple_apps.dir/apps/pagerank.cpp.o.d"
  "CMakeFiles/ripple_apps.dir/apps/sssp.cpp.o"
  "CMakeFiles/ripple_apps.dir/apps/sssp.cpp.o.d"
  "libripple_apps.a"
  "libripple_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
