file(REMOVE_RECURSE
  "libripple_apps.a"
)
