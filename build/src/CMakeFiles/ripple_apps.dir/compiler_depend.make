# Empty compiler generated dependencies file for ripple_apps.
# This may be replaced when dependencies are built.
