# Empty compiler generated dependencies file for ripple_mapreduce.
# This may be replaced when dependencies are built.
