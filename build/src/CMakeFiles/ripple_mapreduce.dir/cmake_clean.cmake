file(REMOVE_RECURSE
  "CMakeFiles/ripple_mapreduce.dir/mapreduce/mapreduce.cpp.o"
  "CMakeFiles/ripple_mapreduce.dir/mapreduce/mapreduce.cpp.o.d"
  "libripple_mapreduce.a"
  "libripple_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
