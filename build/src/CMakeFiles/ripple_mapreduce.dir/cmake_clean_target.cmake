file(REMOVE_RECURSE
  "libripple_mapreduce.a"
)
