
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebsp/aggregator.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/aggregator.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/aggregator.cpp.o.d"
  "/root/repo/src/ebsp/async_engine.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/async_engine.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/async_engine.cpp.o.d"
  "/root/repo/src/ebsp/checkpoint.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/checkpoint.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/checkpoint.cpp.o.d"
  "/root/repo/src/ebsp/engine.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/engine.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/engine.cpp.o.d"
  "/root/repo/src/ebsp/properties.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/properties.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/properties.cpp.o.d"
  "/root/repo/src/ebsp/raw_job.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/raw_job.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/raw_job.cpp.o.d"
  "/root/repo/src/ebsp/sync_engine.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/sync_engine.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/sync_engine.cpp.o.d"
  "/root/repo/src/ebsp/transport.cpp" "src/CMakeFiles/ripple_ebsp.dir/ebsp/transport.cpp.o" "gcc" "src/CMakeFiles/ripple_ebsp.dir/ebsp/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ripple_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
