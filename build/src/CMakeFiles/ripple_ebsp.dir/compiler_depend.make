# Empty compiler generated dependencies file for ripple_ebsp.
# This may be replaced when dependencies are built.
