file(REMOVE_RECURSE
  "libripple_ebsp.a"
)
