file(REMOVE_RECURSE
  "CMakeFiles/ripple_ebsp.dir/ebsp/aggregator.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/aggregator.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/async_engine.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/async_engine.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/checkpoint.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/checkpoint.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/engine.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/engine.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/properties.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/properties.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/raw_job.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/raw_job.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/sync_engine.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/sync_engine.cpp.o.d"
  "CMakeFiles/ripple_ebsp.dir/ebsp/transport.cpp.o"
  "CMakeFiles/ripple_ebsp.dir/ebsp/transport.cpp.o.d"
  "libripple_ebsp.a"
  "libripple_ebsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_ebsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
