
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_gen.cpp" "src/CMakeFiles/ripple_graph.dir/graph/graph_gen.cpp.o" "gcc" "src/CMakeFiles/ripple_graph.dir/graph/graph_gen.cpp.o.d"
  "/root/repo/src/graph/pregel.cpp" "src/CMakeFiles/ripple_graph.dir/graph/pregel.cpp.o" "gcc" "src/CMakeFiles/ripple_graph.dir/graph/pregel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ripple_ebsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ripple_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
