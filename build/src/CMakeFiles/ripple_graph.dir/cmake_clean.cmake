file(REMOVE_RECURSE
  "CMakeFiles/ripple_graph.dir/graph/graph_gen.cpp.o"
  "CMakeFiles/ripple_graph.dir/graph/graph_gen.cpp.o.d"
  "CMakeFiles/ripple_graph.dir/graph/pregel.cpp.o"
  "CMakeFiles/ripple_graph.dir/graph/pregel.cpp.o.d"
  "libripple_graph.a"
  "libripple_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
