# Empty dependencies file for ripple_graph.
# This may be replaced when dependencies are built.
