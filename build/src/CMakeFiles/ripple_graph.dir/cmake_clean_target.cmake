file(REMOVE_RECURSE
  "libripple_graph.a"
)
