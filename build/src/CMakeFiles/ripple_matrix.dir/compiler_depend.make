# Empty compiler generated dependencies file for ripple_matrix.
# This may be replaced when dependencies are built.
