file(REMOVE_RECURSE
  "CMakeFiles/ripple_matrix.dir/matrix/dense.cpp.o"
  "CMakeFiles/ripple_matrix.dir/matrix/dense.cpp.o.d"
  "CMakeFiles/ripple_matrix.dir/matrix/summa.cpp.o"
  "CMakeFiles/ripple_matrix.dir/matrix/summa.cpp.o.d"
  "CMakeFiles/ripple_matrix.dir/matrix/summa_schedule.cpp.o"
  "CMakeFiles/ripple_matrix.dir/matrix/summa_schedule.cpp.o.d"
  "libripple_matrix.a"
  "libripple_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
