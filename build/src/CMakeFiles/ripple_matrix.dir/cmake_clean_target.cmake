file(REMOVE_RECURSE
  "libripple_matrix.a"
)
