file(REMOVE_RECURSE
  "libripple_mq.a"
)
