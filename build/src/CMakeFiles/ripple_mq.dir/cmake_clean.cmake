file(REMOVE_RECURSE
  "CMakeFiles/ripple_mq.dir/mq/mem_queue.cpp.o"
  "CMakeFiles/ripple_mq.dir/mq/mem_queue.cpp.o.d"
  "CMakeFiles/ripple_mq.dir/mq/table_queue.cpp.o"
  "CMakeFiles/ripple_mq.dir/mq/table_queue.cpp.o.d"
  "libripple_mq.a"
  "libripple_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripple_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
