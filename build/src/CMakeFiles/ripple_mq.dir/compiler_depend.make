# Empty compiler generated dependencies file for ripple_mq.
# This may be replaced when dependencies are built.
