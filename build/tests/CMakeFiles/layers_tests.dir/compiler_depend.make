# Empty compiler generated dependencies file for layers_tests.
# This may be replaced when dependencies are built.
