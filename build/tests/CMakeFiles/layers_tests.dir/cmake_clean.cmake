file(REMOVE_RECURSE
  "CMakeFiles/layers_tests.dir/graph/graph_gen_test.cpp.o"
  "CMakeFiles/layers_tests.dir/graph/graph_gen_test.cpp.o.d"
  "CMakeFiles/layers_tests.dir/graph/pregel_test.cpp.o"
  "CMakeFiles/layers_tests.dir/graph/pregel_test.cpp.o.d"
  "CMakeFiles/layers_tests.dir/mapreduce/mapreduce_test.cpp.o"
  "CMakeFiles/layers_tests.dir/mapreduce/mapreduce_test.cpp.o.d"
  "layers_tests"
  "layers_tests.pdb"
  "layers_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layers_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
