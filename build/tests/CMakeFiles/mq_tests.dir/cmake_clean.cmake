file(REMOVE_RECURSE
  "CMakeFiles/mq_tests.dir/mq/queue_set_test.cpp.o"
  "CMakeFiles/mq_tests.dir/mq/queue_set_test.cpp.o.d"
  "mq_tests"
  "mq_tests.pdb"
  "mq_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mq_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
