file(REMOVE_RECURSE
  "CMakeFiles/apps_tests.dir/apps/pagerank_test.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/pagerank_test.cpp.o.d"
  "CMakeFiles/apps_tests.dir/apps/sssp_test.cpp.o"
  "CMakeFiles/apps_tests.dir/apps/sssp_test.cpp.o.d"
  "CMakeFiles/apps_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/apps_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/apps_tests.dir/matrix/dense_test.cpp.o"
  "CMakeFiles/apps_tests.dir/matrix/dense_test.cpp.o.d"
  "CMakeFiles/apps_tests.dir/matrix/summa_test.cpp.o"
  "CMakeFiles/apps_tests.dir/matrix/summa_test.cpp.o.d"
  "apps_tests"
  "apps_tests.pdb"
  "apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
