file(REMOVE_RECURSE
  "CMakeFiles/ebsp_tests.dir/ebsp/aggregator_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/aggregator_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/async_engine_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/async_engine_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/checkpoint_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/checkpoint_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/engine_front_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/engine_front_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/properties_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/properties_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/sync_engine_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/sync_engine_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/transport_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/transport_test.cpp.o.d"
  "CMakeFiles/ebsp_tests.dir/ebsp/typed_job_test.cpp.o"
  "CMakeFiles/ebsp_tests.dir/ebsp/typed_job_test.cpp.o.d"
  "ebsp_tests"
  "ebsp_tests.pdb"
  "ebsp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebsp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
