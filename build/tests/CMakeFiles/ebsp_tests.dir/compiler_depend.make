# Empty compiler generated dependencies file for ebsp_tests.
# This may be replaced when dependencies are built.
