# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/kvstore_tests[1]_include.cmake")
include("/root/repo/build/tests/mq_tests[1]_include.cmake")
include("/root/repo/build/tests/ebsp_tests[1]_include.cmake")
include("/root/repo/build/tests/layers_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
