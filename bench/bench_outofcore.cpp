// bench_outofcore — the out-of-core proof for the durable log store
// (DESIGN.md §14): analytics over a dataset several times larger than
// the store's resident-memory budget.
//
// Runs PageRank or incremental SSSP on a deterministic power-law graph
// against the "log" backend with a `--budget` (also RIPPLE_STORE_MEM)
// that forces the working set through eviction and the segment
// read-through path, then prints a digest of the final state:
//
//   OUTOFCORE_BACKEND log
//   OUTOFCORE_BUDGET <bytes>
//   PAGERANK_DIGEST <16 hex>      (or SSSP_DIGEST <16 hex>)
//   OUTOFCORE_RESIDENT_PEAK <bytes>
//   OUTOFCORE_EVICTIONS <n>
//   OUTOFCORE_SEGMENT_READS <hits> <misses>
//   OUTOFCORE_OK
//
// scripts/bench_outofcore.sh runs the bounded variant under a hard
// `ulimit -v` and requires its digest to be byte-identical to an
// unbounded (--budget 0) run: bounding memory must be invisible in the
// results.  A bounded run additionally asserts evictions > 0 and
// resident-peak <= budget + slack, so "passed" can't mean "the budget
// never engaged".

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "ebsp/engine.h"
#include "graph/graph_gen.h"
#include "kvstore/log_store.h"
#include "kvstore/store_factory.h"

namespace {

using namespace ripple;

constexpr std::uint32_t kParts = 6;

// One operation's transient footprint may momentarily sit on top of the
// budget (DESIGN.md §14); anything past this slack is an accounting bug.
constexpr std::uint64_t kPeakSlack = 4096;

graph::Graph makeGraph(bool smoke) {
  graph::PowerLawOptions gopts;
  gopts.vertices = smoke ? 150 : 2000;
  gopts.edges = smoke ? 750 : 12000;
  gopts.seed = 11;
  return graph::generatePowerLaw(gopts);
}

std::uint64_t doubleDigest(const std::vector<double>& values) {
  ByteWriter w;
  for (const double v : values) {
    w.putDouble(v);
  }
  return fnv1a64(w.view());
}

std::uint64_t distanceDigest(const std::vector<std::int32_t>& distances) {
  ByteWriter w;
  for (const std::int32_t d : distances) {
    w.putVarintSigned(d);
  }
  return fnv1a64(w.view());
}

int run(const std::string& workload, std::size_t budget,
        const std::string& storePath, int threads, bool smoke) {
  const graph::Graph g = makeGraph(smoke);

  auto store = kv::makeStore(kv::StoreBackend::kLog, kParts, storePath, budget);
  auto* log = dynamic_cast<kv::LogStore*>(store.get());
  if (log == nullptr) {
    std::fprintf(stderr, "bench_outofcore: expected the log backend\n");
    return 1;
  }
  std::printf("OUTOFCORE_BACKEND %s\n", store->backendName());
  std::printf("OUTOFCORE_BUDGET %llu\n",
              static_cast<unsigned long long>(
                  log->stats().memoryBudgetBytes));
  std::fflush(stdout);

  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  eopts.checkpoint.enabled = true;
  eopts.checkpoint.interval = 1;
  eopts.checkpoint.jobId = "outofcore-" + workload;
  ebsp::Engine engine(store, eopts);

  std::uint64_t digest = 0;
  if (workload == "pagerank") {
    apps::PageRankOptions popts;
    popts.iterations = smoke ? 5 : 10;
    apps::loadPageRankGraph(*store, popts.graphTable, g, kParts);
    apps::runPageRank(engine, popts);
    digest = doubleDigest(
        apps::readRanks(*store, popts.graphTable, g.vertexCount()));
    std::printf("PAGERANK_DIGEST %016llx\n",
                static_cast<unsigned long long>(digest));
  } else if (workload == "sssp") {
    apps::SsspOptions options;
    options.parts = kParts;
    apps::SsspDriver driver(engine, options);
    driver.loadGraph(g);
    driver.initialize();
    digest = distanceDigest(driver.distances(g.vertexCount()));
    std::printf("SSSP_DIGEST %016llx\n",
                static_cast<unsigned long long>(digest));
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }

  const kv::LogStore::Stats s = log->stats();
  std::printf("OUTOFCORE_RESIDENT_PEAK %llu\n",
              static_cast<unsigned long long>(s.residentPeakBytes));
  std::printf("OUTOFCORE_EVICTIONS %llu\n",
              static_cast<unsigned long long>(s.evictions));
  std::printf("OUTOFCORE_SEGMENT_READS %llu %llu\n",
              static_cast<unsigned long long>(s.segmentReadHits),
              static_cast<unsigned long long>(s.segmentReadMisses));
  std::fflush(stdout);

  if (s.memoryBudgetBytes > 0) {
    if (s.evictions == 0) {
      std::fprintf(stderr,
                   "bench_outofcore: budget of %llu bytes never forced an "
                   "eviction; workload is not out-of-core\n",
                   static_cast<unsigned long long>(s.memoryBudgetBytes));
      return 1;
    }
    if (s.residentPeakBytes > s.memoryBudgetBytes + kPeakSlack) {
      std::fprintf(stderr,
                   "bench_outofcore: resident peak %llu exceeds budget %llu "
                   "+ slack\n",
                   static_cast<unsigned long long>(s.residentPeakBytes),
                   static_cast<unsigned long long>(s.memoryBudgetBytes));
      return 1;
    }
  }
  std::printf("OUTOFCORE_OK\n");
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "pagerank";
  std::string storePath;
  std::size_t budget = 0;
  int threads = 4;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
    } else if (arg == "--budget" && i + 1 < argc) {
      const std::string spec = argv[++i];
      if (std::optional<std::size_t> parsed = kv::parseByteSize(spec)) {
        budget = *parsed;
      } else {
        std::fprintf(stderr, "bad --budget '%s' (want <digits>[K|M|G])\n",
                     spec.c_str());
        return 2;
      }
    } else if (arg == "--store-path" && i + 1 < argc) {
      storePath = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload pagerank|sssp] [--budget BYTES] "
                   "[--store-path DIR] [--threads N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(workload, budget, storePath, threads, smoke);
}
