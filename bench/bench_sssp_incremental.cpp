// Reproduces the §V-C measurement: incremental single-source shortest
// paths on a time-varying graph — selective enablement vs. full scans.
//
// Paper setup: 100,000 vertices, ~1.8 million random power-law edges
// (undirected), then ten batches of 1,000 primitive changes each; the
// elapsed time to update the distance annotations for all ten batches is
// summed.  Paper result (12 trials): selective 0.21 ± 0.03 s, full scan
// 78 ± 5 s.
//
// Environment:
//   RIPPLE_SCALE    workload scale (1 = paper size; default 0.1)
//   RIPPLE_TRIALS   trials (paper: 12; default 3)
//   RIPPLE_SSSP_BATCHES / RIPPLE_SSSP_CHANGES  batch structure (10 x 1000)

#include <iomanip>
#include <iostream>

#include "apps/sssp.h"
#include "bench_common.h"
#include "common/stats.h"
#include "kvstore/partitioned_store.h"

using namespace ripple;

int main(int argc, char** argv) {
  bench::BenchReport report(argc, argv, "sssp_incremental");
  const double scale = bench::workloadScale(0.1);
  const int trials = bench::trialCount(3);
  const auto vertices = static_cast<std::size_t>(100'000 * scale);
  const auto edges = static_cast<std::uint64_t>(1'800'000 * scale);
  const int batches =
      static_cast<int>(bench::envLong("RIPPLE_SSSP_BATCHES", 10));
  const auto perBatch = static_cast<std::size_t>(
      bench::envLong("RIPPLE_SSSP_CHANGES", 1000));
  report.setInfo("scale", std::to_string(scale));
  report.setInfo("trials", std::to_string(trials));
  report.setInfo("batches", std::to_string(batches));

  bench::printHeader("Incremental SSSP: selective enablement vs full scan");
  std::cout << "vertices=" << vertices << " edges~" << edges
            << " batches=" << batches << "x" << perBatch
            << " trials=" << trials << "\n\n";

  graph::PowerLawOptions gen;
  gen.vertices = vertices;
  gen.edges = edges;
  gen.undirected = true;
  gen.seed = 2024;
  const graph::Graph g = graph::generatePowerLaw(gen);

  RunningStats selective;
  RunningStats fullScan;
  apps::SsspUpdateStats selTotals;
  apps::SsspUpdateStats fullTotals;

  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(5000 + trial);
    std::vector<std::vector<graph::GraphChange>> changeBatches;
    for (int i = 0; i < batches; ++i) {
      changeBatches.push_back(
          graph::randomChangeBatch(vertices, perBatch, 1.8, rng));
    }
    for (const bool sel : {true, false}) {
      auto store = report.makeStore(6);
      report.bindStore(*store);
      ebsp::EngineOptions eopts;
      eopts.threads = report.threads();
      eopts.tracer = report.tracer();
      eopts.metrics = report.metrics();
      ebsp::Engine engine(store, eopts);
      apps::SsspOptions options;
      options.selective = sel;
      options.source = 0;
      options.parts = 6;
      apps::SsspDriver driver(engine, options);
      driver.loadGraph(g);
      driver.initialize();

      double elapsed = 0;
      for (const auto& batch : changeBatches) {
        const apps::SsspUpdateStats s = driver.applyBatch(batch);
        elapsed += s.elapsedSeconds;
        auto& totals = sel ? selTotals : fullTotals;
        totals.jobs += s.jobs;
        totals.steps += s.steps;
        totals.invocations += s.invocations;
        totals.messages += s.messages;
      }
      (sel ? selective : fullScan).add(elapsed);
    }
  }

  std::cout << std::setw(26) << "selective enablement:"
            << std::setw(18) << selective.summary(3) << " s   ("
            << selTotals.invocations / trials << " invocations, "
            << selTotals.messages / trials << " messages per trial)\n";
  std::cout << std::setw(26) << "full scan:"
            << std::setw(18) << fullScan.summary(3) << " s   ("
            << fullTotals.invocations / trials << " invocations, "
            << fullTotals.messages / trials << " messages per trial)\n";
  std::cout << std::fixed << std::setprecision(0)
            << "\nfull/selective ratio: "
            << fullScan.mean() / selective.mean()
            << "x   (paper: 78 ± 5 s vs 0.21 ± 0.03 s = ~370x)\n";
  report.write();
  return 0;
}
