// Reproduces the §V-B measurement: SUMMA 3x3 matrix multiplication run
// with synchronization vs. without.
//
// Paper: WebSphere eXtreme Scale store with 10 containers; 8 runs each;
// with synchronization 90 ± 0.5 s, without 51 ± 0.5 s (ratio 1.76;
// idealized schedule bound 7/3 = 2.33).
//
// This harness reports the virtual-cluster makespan (one virtual
// processor per component — the quantity the paper measures, independent
// of the physical core count of this machine; see DESIGN.md §2) alongside
// wall-clock time.
//
// Environment:
//   RIPPLE_SUMMA_GRID   grid dimension (default 3)
//   RIPPLE_SUMMA_BLOCK  block size (default 192)
//   RIPPLE_TRIALS       trials (paper: 8; default 3)

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "kvstore/partitioned_store.h"
#include "matrix/summa.h"
#include "matrix/summa_schedule.h"

using namespace ripple;

int main(int argc, char** argv) {
  bench::BenchReport report(argc, argv, "summa_sync_vs_nosync");
  const auto grid = static_cast<std::uint32_t>(
      bench::envLong("RIPPLE_SUMMA_GRID", 3));
  const auto blockSize = static_cast<std::size_t>(
      bench::envLong("RIPPLE_SUMMA_BLOCK", 192));
  const int trials = bench::trialCount(3);
  report.setInfo("grid", std::to_string(grid));
  report.setInfo("block", std::to_string(blockSize));
  report.setInfo("trials", std::to_string(trials));

  bench::printHeader("SUMMA " + std::to_string(grid) + "x" +
                     std::to_string(grid) +
                     " matrix multiply: synchronized vs no-sync");
  std::cout << "block=" << blockSize << " trials=" << trials << "\n\n";

  Rng rng(17);
  matrix::BlockMatrix a(grid, blockSize);
  matrix::BlockMatrix b(grid, blockSize);
  a.fillRandom(rng);
  b.fillRandom(rng);
  const matrix::BlockMatrix expected =
      matrix::BlockMatrix::multiplyReference(a, b);

  RunningStats syncVt;
  RunningStats asyncVt;
  RunningStats syncWall;
  RunningStats asyncWall;
  bool allVerified = true;

  for (int trial = 0; trial < trials; ++trial) {
    for (const bool synchronized : {true, false}) {
      auto store = report.makeStore(grid * grid);
      report.bindStore(*store);
      ebsp::EngineOptions eopts;
      eopts.threads = report.threads();
      eopts.tracer = report.tracer();
      eopts.metrics = report.metrics();
      ebsp::Engine engine(store, eopts);
      matrix::SummaOptions options;
      options.synchronized = synchronized;
      options.parts = grid * grid;
      const matrix::SummaResult r = matrix::runSumma(engine, a, b, options);
      allVerified = allVerified && r.c.approxEqual(expected, 1e-9);
      (synchronized ? syncVt : asyncVt).add(r.job.virtualMakespan);
      (synchronized ? syncWall : asyncWall).add(r.job.elapsedSeconds);
    }
  }

  std::cout << std::setw(18) << "" << std::setw(26)
            << "virtual makespan (s)" << std::setw(22) << "wall clock (s)"
            << "\n";
  std::cout << std::setw(18) << "with sync" << std::setw(24)
            << syncVt.summary(4) << std::setw(22) << syncWall.summary(3)
            << "\n";
  std::cout << std::setw(18) << "without sync" << std::setw(24)
            << asyncVt.summary(4) << std::setw(22) << asyncWall.summary(3)
            << "\n";
  std::cout << std::fixed << std::setprecision(2)
            << "\nsync/no-sync virtual-makespan ratio: "
            << syncVt.mean() / asyncVt.mean() << "\n"
            << "schedule bound: "
            << matrix::simulateSummaSchedule(grid).slowdownFactor(grid)
            << " (idealized)\n"
            << "paper measured: 90 s vs 51 s = 1.76 (grid 3, WXS, 10 "
               "containers)\n"
            << "results verified against serial product: "
            << (allVerified ? "yes" : "NO — MISMATCH") << "\n";
  report.write();
  return allVerified ? 0 : 1;
}
