// Reproduces Table I: "Elapsed time (sec) for PageRank variants".
//
// Paper setup: three random power-law graphs — (132000 V, 4341659 E),
// (132000 V, 8683970 E), (262000 V, 8683970 E) — each ranked by the
// direct variant (one step per iteration) and the MapReduce-emulation
// variant (two steps per iteration), 11 trials each, on a 6-partition
// parallel debugging store.  Paper result: direct 15-19% faster, because
// it has 50% fewer I/O and synchronization rounds.
//
// Environment knobs:
//   RIPPLE_SCALE   workload scale factor (1 = paper sizes; default 0.25)
//   RIPPLE_TRIALS  trials per cell (paper: 11; default 3)
//   RIPPLE_PR_ITERS iterations of the PageRank equations (default 10)

#include <iomanip>
#include <iostream>

#include "apps/pagerank.h"
#include "bench_common.h"
#include "common/stats.h"
#include "kvstore/partitioned_store.h"

using namespace ripple;

namespace {

struct Row {
  std::size_t vertices;
  std::uint64_t edges;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report(argc, argv, "table1_pagerank");
  const double scale = bench::workloadScale(0.25);
  const int trials = bench::trialCount(3);
  const int iterations =
      static_cast<int>(bench::envLong("RIPPLE_PR_ITERS", 10));
  report.setInfo("scale", std::to_string(scale));
  report.setInfo("trials", std::to_string(trials));
  report.setInfo("iterations", std::to_string(iterations));

  const Row rows[] = {
      {static_cast<std::size_t>(132000 * scale),
       static_cast<std::uint64_t>(4341659 * scale)},
      {static_cast<std::size_t>(132000 * scale),
       static_cast<std::uint64_t>(8683970 * scale)},
      {static_cast<std::size_t>(262000 * scale),
       static_cast<std::uint64_t>(8683970 * scale)},
  };

  bench::printHeader("Table I: Elapsed time (sec) for PageRank variants");
  std::cout << "scale=" << scale << " trials=" << trials
            << " iterations=" << iterations << " store=6 partitions\n\n";
  std::cout << std::setw(10) << "Vertices" << std::setw(10) << "Edges"
            << std::setw(22) << "Direct (avg±sd)" << std::setw(22)
            << "MapReduce (avg±sd)" << std::setw(12) << "MR/Direct" << "\n";

  for (const Row& row : rows) {
    // "The same graph is used for each alternative."
    graph::PowerLawOptions gen;
    gen.vertices = row.vertices;
    gen.edges = row.edges;
    gen.seed = 1000 + row.vertices;
    const graph::Graph g = graph::generatePowerLaw(gen);

    RunningStats direct;
    RunningStats mapreduce;
    for (int trial = 0; trial < trials; ++trial) {
      for (const bool mr : {false, true}) {
        auto store = report.makeStore(6);
        report.bindStore(*store);
        apps::loadPageRankGraph(*store, "pr_graph", g, 6);
        ebsp::EngineOptions eopts;
        eopts.threads = report.threads();
        eopts.tracer = report.tracer();
        eopts.metrics = report.metrics();
        ebsp::Engine engine(store, eopts);
        apps::PageRankOptions options;
        options.iterations = iterations;
        options.mapReduceVariant = mr;
        const apps::PageRankResult r = apps::runPageRank(engine, options);
        (mr ? mapreduce : direct).add(r.job.elapsedSeconds);
      }
    }
    std::cout << std::setw(10) << row.vertices << std::setw(10) << g.edges
              << std::setw(20) << direct.summary(2) << std::setw(20)
              << mapreduce.summary(2) << std::setw(11) << std::fixed
              << std::setprecision(2) << mapreduce.mean() / direct.mean()
              << "x\n";
    std::cout << "             direct tails: " << direct.summaryWithTails(2)
              << "\n             mapred tails: "
              << mapreduce.summaryWithTails(2) << "\n";
  }
  report.write();

  std::cout << "\nPaper (16-HT-CPU x3550 M2, Java, 11 trials):\n"
            << "    132000   4341659        28.5 ± 0.4        32.9 ± 0.7\n"
            << "    132000   8683970        44.8 ± 0.5        53.2 ± 0.4\n"
            << "    262000   8683970        55.3 ± 0.6        63.5 ± 0.7\n"
            << "Expected shape: MapReduce variant slower (paper: direct "
               "15-19% faster).\n";
  return 0;
}
