// Ablation bench for §II-A's property-driven execution optimizations.
// One fixed fan-in workload; each section flips exactly one property and
// reports the cost difference the optimization buys:
//
//   no-sort       (needs-order off => hash collection, no sorted table)
//   combiner      (message combiner on/off => spill volume)
//   no-collect    (one-msg + no-continue => no value-list construction)
//   run-anywhere  (rare-state + no-collect => work stealing on a skewed
//                  no-sync workload)
//
// Environment: RIPPLE_ABL_COMPONENTS, RIPPLE_ABL_MSGS, RIPPLE_TRIALS.

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "ebsp/job.h"
#include "kvstore/partitioned_store.h"

using namespace ripple;
using namespace ripple::ebsp;

namespace {

constexpr std::uint32_t kParts = 6;

/// Fan-in: every component sends `fanout` increments to pseudo-random
/// destinations for `rounds` steps; receivers sum into state.
class FanInCompute : public Compute<std::uint32_t, std::uint64_t, std::uint64_t> {
 public:
  FanInCompute(std::uint32_t components, int rounds, int fanout,
               bool useCombiner)
      : components_(components), rounds_(rounds), fanout_(fanout),
        useCombiner_(useCombiner) {}

  bool compute(Context& ctx) override {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : ctx.inputMessages()) {
      sum += v;
    }
    if (sum > 0) {
      ctx.writeState(ctx.readState().value_or(0) + sum);
    }
    if (ctx.stepNum() <= rounds_) {
      std::uint64_t h = mix64(ctx.key() * 7919 +
                              static_cast<std::uint64_t>(ctx.stepNum()));
      for (int i = 0; i < fanout_; ++i) {
        h = mix64(h + static_cast<std::uint64_t>(i));
        ctx.sendMessage(static_cast<std::uint32_t>(h % components_), 1);
      }
      return true;
    }
    return false;
  }

  std::uint64_t combineMessages(const std::uint32_t&, const std::uint64_t& a,
                                const std::uint64_t& b) override {
    return a + b;
  }

  bool hasMessageCombiner() const override { return useCombiner_; }

 private:
  std::uint32_t components_;
  int rounds_;
  int fanout_;
  bool useCombiner_;
};

class FanInJob : public Job<std::uint32_t, std::uint64_t, std::uint64_t> {
 public:
  FanInJob(std::uint32_t components, int rounds, int fanout, bool useCombiner,
           bool needsOrder)
      : components_(components), rounds_(rounds), fanout_(fanout),
        useCombiner_(useCombiner), needsOrder_(needsOrder) {}

  std::vector<std::string> stateTableNames() const override {
    return {"fanin_state"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<FanInCompute>(components_, rounds_, fanout_,
                                          useCombiner_);
  }
  std::string referenceTable() const override { return "fanin_state"; }
  JobProperties properties() const override {
    JobProperties p;
    p.needsOrder = needsOrder_;
    return p;
  }
  std::vector<RawLoaderPtr> loaders() const override {
    auto loader = std::make_shared<VectorLoader>();
    for (std::uint32_t c = 0; c < components_; ++c) {
      loader->enable(encodeToBytes(c));
    }
    return {loader};
  }

 private:
  std::uint32_t components_;
  int rounds_;
  int fanout_;
  bool useCombiner_;
  bool needsOrder_;
};

JobResult runFanIn(bench::BenchReport& benchReport, std::uint32_t components,
                   int rounds, int fanout, bool useCombiner, bool needsOrder) {
  auto store = benchReport.makeStore(kParts);
  benchReport.bindStore(*store);
  kv::TableOptions options;
  options.parts = kParts;
  store->createTable("fanin_state", options);
  EngineOptions engineOptions;
  engineOptions.threads = benchReport.threads();
  engineOptions.tracer = benchReport.tracer();
  engineOptions.metrics = benchReport.metrics();
  Engine engine(store, engineOptions);
  FanInJob job(components, rounds, fanout, useCombiner, needsOrder);
  return runJob(engine, job);
}

/// Skewed no-sync workload for the run-anywhere ablation: a chain of
/// messages whose keys all hash to one part unless stolen.
class SkewCompute : public Compute<std::uint64_t, std::uint64_t, std::uint64_t> {
 public:
  explicit SkewCompute(std::uint64_t hops) : hops_(hops) {}

  bool compute(Context& ctx) override {
    for (const std::uint64_t hop : ctx.inputMessages()) {
      // Busy work standing in for per-message compute (rare-state means
      // the work is self-contained, so it can run on any part).
      volatile double x = 1.0;
      for (int i = 0; i < 40'000; ++i) {
        x = x * 1.0000001 + 0.5;
      }
      if (hop < hops_) {
        ctx.sendMessage(ctx.key() + 1, hop + 1);
      }
    }
    return false;
  }

 private:
  std::uint64_t hops_;
};

class SkewJob : public Job<std::uint64_t, std::uint64_t, std::uint64_t> {
 public:
  SkewJob(std::uint64_t chains, std::uint64_t hops, bool rareState)
      : chains_(chains), hops_(hops), rareState_(rareState) {}

  std::vector<std::string> stateTableNames() const override {
    return {"skew_state"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<SkewCompute>(hops_);
  }
  std::string referenceTable() const override { return "skew_state"; }
  JobProperties properties() const override {
    JobProperties p;
    p.oneMsg = true;
    p.noContinue = true;
    p.noSsOrder = true;
    p.rareState = rareState_;  // Toggles run-anywhere.
    return p;
  }
  std::vector<RawLoaderPtr> loaders() const override {
    auto loader = std::make_shared<VectorLoader>();
    for (std::uint64_t c = 0; c < chains_; ++c) {
      loader->message(encodeToBytes(c * 1'000'000), encodeToBytes(0ULL));
    }
    return {loader};
  }

 private:
  std::uint64_t chains_;
  std::uint64_t hops_;
  bool rareState_;
};

JobResult runSkew(bench::BenchReport& benchReport, bool stealing) {
  auto store = benchReport.makeStore(kParts);
  benchReport.bindStore(*store);
  kv::TableOptions options;
  options.parts = kParts;
  // All keys to part 0 unless stolen: constant partitioner hash.
  options.partitioner = std::make_shared<const Partitioner>(
      kParts, [](BytesView) -> std::uint64_t { return 0; });
  store->createTable("skew_state", options);
  EngineOptions engineOptions;
  engineOptions.threads = benchReport.threads();
  engineOptions.workStealing = stealing;
  engineOptions.tracer = benchReport.tracer();
  engineOptions.metrics = benchReport.metrics();
  Engine engine(store, engineOptions);
  SkewJob job(/*chains=*/64, /*hops=*/40, /*rareState=*/true);
  return runJob(engine, job);
}

void report(const char* label, const JobResult& r) {
  std::cout << "  " << std::left << std::setw(30) << label << std::right
            << std::fixed << std::setprecision(3) << std::setw(8)
            << r.elapsedSeconds << " s wall" << std::setw(10)
            << std::setprecision(4) << r.virtualMakespan << " s virtual"
            << std::setw(12) << r.metrics.messagesSent << " msgs"
            << std::setw(12) << r.metrics.spillBytes << " spill B"
            << std::setw(9) << r.metrics.stolenMessages << " stolen\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport benchReport(argc, argv, "ablation_properties");
  const auto components = static_cast<std::uint32_t>(
      bench::envLong("RIPPLE_ABL_COMPONENTS", 20'000));
  const int fanout =
      static_cast<int>(bench::envLong("RIPPLE_ABL_MSGS", 12));
  const int rounds = 6;
  benchReport.setInfo("components", std::to_string(components));
  benchReport.setInfo("fanout", std::to_string(fanout));

  bench::printHeader("Ablation: property-driven optimizations (§II-A)");
  std::cout << "fan-in workload: " << components << " components x "
            << fanout << " messages x " << rounds << " rounds\n\n";

  std::cout << "no-sort (needs-order off => hash collection):\n";
  report("needs-order declared",
         runFanIn(benchReport, components, rounds, fanout,
                  /*combiner=*/true, /*order=*/true));
  report("no-sort (default)",
         runFanIn(benchReport, components, rounds, fanout,
                  /*combiner=*/true, /*order=*/false));

  std::cout << "\nmessage combiner (sender-side + barrier combining):\n";
  report("without combiner",
         runFanIn(benchReport, components, rounds, fanout,
                  /*combiner=*/false, /*order=*/false));
  report("with combiner",
         runFanIn(benchReport, components, rounds, fanout,
                  /*combiner=*/true, /*order=*/false));

  std::cout << "\nrun-anywhere (work stealing on a part-skewed no-sync "
               "workload):\n";
  report("stealing disabled", runSkew(benchReport, false));
  report("stealing enabled", runSkew(benchReport, true));

  benchReport.write();
  return 0;
}
