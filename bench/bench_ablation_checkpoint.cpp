// Ablation bench for the fault-tolerance design (§IV-A outline + the
// `deterministic` property of §II-A): cost of checkpointing at every
// barrier vs. the wider interval the deterministic property permits, and
// the cost of one recovery + replay.
//
// Environment: RIPPLE_ABL_COMPONENTS, RIPPLE_TRIALS.

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "ebsp/job.h"
#include "kvstore/partitioned_store.h"

using namespace ripple;
using namespace ripple::ebsp;

namespace {

/// An iterative job with real per-component state to checkpoint: each
/// component smooths its value with two neighbors for `rounds` steps.
class SmoothCompute : public Compute<std::uint32_t, double, double> {
 public:
  SmoothCompute(std::uint32_t n, int rounds) : n_(n), rounds_(rounds) {}

  bool compute(Context& ctx) override {
    double incoming = 0;
    int count = 0;
    for (const double v : ctx.inputMessages()) {
      incoming += v;
      ++count;
    }
    double value = ctx.readState().value_or(
        static_cast<double>(ctx.key()) / static_cast<double>(n_));
    if (count > 0) {
      value = 0.5 * value + 0.5 * incoming / count;
      ctx.writeState(value);
    }
    if (ctx.stepNum() <= rounds_) {
      ctx.sendMessage((ctx.key() + 1) % n_, value);
      ctx.sendMessage((ctx.key() + n_ - 1) % n_, value);
      return true;
    }
    return false;
  }

 private:
  std::uint32_t n_;
  int rounds_;
};

class SmoothJob : public Job<std::uint32_t, double, double> {
 public:
  SmoothJob(std::uint32_t n, int rounds, bool deterministic)
      : n_(n), rounds_(rounds), deterministic_(deterministic) {}

  std::vector<std::string> stateTableNames() const override {
    return {"smooth_state"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<SmoothCompute>(n_, rounds_);
  }
  std::string referenceTable() const override { return "smooth_state"; }
  JobProperties properties() const override {
    JobProperties p;
    p.deterministic = deterministic_;
    return p;
  }
  std::vector<RawLoaderPtr> loaders() const override {
    auto loader = std::make_shared<VectorLoader>();
    for (std::uint32_t c = 0; c < n_; ++c) {
      loader->enable(encodeToBytes(c));
    }
    return {loader};
  }

 private:
  std::uint32_t n_;
  int rounds_;
  bool deterministic_;
};

JobResult runSmooth(bench::BenchReport& benchReport, std::uint32_t n,
                    int rounds, bool deterministic, bool checkpointing,
                    int interval, int failAtStep) {
  auto store = kv::PartitionedStore::create(6);
  benchReport.bindStore(*store);
  kv::TableOptions tableOptions;
  tableOptions.parts = 6;
  store->createTable("smooth_state", tableOptions);
  EngineOptions options;
  options.checkpoint.enabled = checkpointing;
  options.checkpoint.interval = interval;
  options.tracer = benchReport.tracer();
  options.metrics = benchReport.metrics();
  if (failAtStep > 0) {
    bool failed = false;
    options.onBarrier = [failAtStep, failed](int step) mutable {
      if (!failed && step == failAtStep) {
        failed = true;
        throw SimulatedFailure("injected shard failure");
      }
    };
  }
  Engine engine(store, options);
  SmoothJob job(n, rounds, deterministic);
  return runJob(engine, job);
}

void report(const char* label, const JobResult& r) {
  std::cout << "  " << std::left << std::setw(42) << label << std::right
            << std::fixed << std::setprecision(3) << std::setw(8)
            << r.elapsedSeconds << " s" << std::setw(8)
            << r.metrics.checkpoints << " ckpts" << std::setw(6)
            << r.metrics.recoveries << " recov\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport benchReport(argc, argv, "ablation_checkpoint");
  const auto n = static_cast<std::uint32_t>(
      bench::envLong("RIPPLE_ABL_COMPONENTS", 30'000));
  const int rounds = 12;
  benchReport.setInfo("components", std::to_string(n));

  bench::printHeader(
      "Ablation: checkpointing cost and deterministic fast recovery");
  std::cout << n << " components, " << rounds << " rounds\n\n";

  report("no checkpointing",
         runSmooth(benchReport, n, rounds, true, false, 1, 0));
  report("non-deterministic (ckpt every barrier)",
         runSmooth(benchReport, n, rounds, false, true, 4, 0));
  report("deterministic, interval 4",
         runSmooth(benchReport, n, rounds, true, true, 4, 0));
  report("deterministic, interval 4, fail@step 7",
         runSmooth(benchReport, n, rounds, true, true, 4, 7));
  benchReport.write();
  return 0;
}
