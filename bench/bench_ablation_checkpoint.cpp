// Ablation bench for the fault-tolerance design (§IV-A outline + the
// `deterministic` property of §II-A): cost of checkpointing at every
// barrier vs. the wider interval the deterministic property permits, and
// the cost of one recovery + replay.
//
// `--faults <seed>` adds a fault-injection section: the same workload
// under seeded store chaos (transient failures absorbed by retries) and
// under a forced retry-budget escalation (engine-level checkpoint
// recovery), with the overhead of each relative to the fault-free run.
//
// Environment: RIPPLE_ABL_COMPONENTS, RIPPLE_TRIALS.

#include <cstring>
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "ebsp/job.h"
#include "fault/fault.h"
#include "fault/faulty_store.h"
#include "kvstore/partitioned_store.h"

using namespace ripple;
using namespace ripple::ebsp;

namespace {

/// An iterative job with real per-component state to checkpoint: each
/// component smooths its value with two neighbors for `rounds` steps.
class SmoothCompute : public Compute<std::uint32_t, double, double> {
 public:
  SmoothCompute(std::uint32_t n, int rounds) : n_(n), rounds_(rounds) {}

  bool compute(Context& ctx) override {
    double incoming = 0;
    int count = 0;
    for (const double v : ctx.inputMessages()) {
      incoming += v;
      ++count;
    }
    double value = ctx.readState().value_or(
        static_cast<double>(ctx.key()) / static_cast<double>(n_));
    if (count > 0) {
      value = 0.5 * value + 0.5 * incoming / count;
      ctx.writeState(value);
    }
    if (ctx.stepNum() <= rounds_) {
      ctx.sendMessage((ctx.key() + 1) % n_, value);
      ctx.sendMessage((ctx.key() + n_ - 1) % n_, value);
      return true;
    }
    return false;
  }

 private:
  std::uint32_t n_;
  int rounds_;
};

class SmoothJob : public Job<std::uint32_t, double, double> {
 public:
  SmoothJob(std::uint32_t n, int rounds, bool deterministic)
      : n_(n), rounds_(rounds), deterministic_(deterministic) {}

  std::vector<std::string> stateTableNames() const override {
    return {"smooth_state"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<SmoothCompute>(n_, rounds_);
  }
  std::string referenceTable() const override { return "smooth_state"; }
  JobProperties properties() const override {
    JobProperties p;
    p.deterministic = deterministic_;
    return p;
  }
  std::vector<RawLoaderPtr> loaders() const override {
    auto loader = std::make_shared<VectorLoader>();
    for (std::uint32_t c = 0; c < n_; ++c) {
      loader->enable(encodeToBytes(c));
    }
    return {loader};
  }

 private:
  std::uint32_t n_;
  int rounds_;
  bool deterministic_;
};

JobResult runSmooth(bench::BenchReport& benchReport, std::uint32_t n,
                    int rounds, bool deterministic, bool checkpointing,
                    int interval, int failAtStep,
                    fault::FaultInjectorPtr injector = nullptr,
                    int retryAttempts = 0) {
  kv::KVStorePtr store = benchReport.makeStore(6);
  if (injector != nullptr) {
    if (benchReport.metrics() != nullptr) {
      injector->bindRegistry(*benchReport.metrics());
    }
    store = fault::FaultyStore::wrap(std::move(store), injector);
  }
  benchReport.bindStore(*store);
  kv::TableOptions tableOptions;
  tableOptions.parts = 6;
  store->createTable("smooth_state", tableOptions);
  EngineOptions options;
  options.threads = benchReport.threads();
  options.checkpoint.enabled = checkpointing;
  options.checkpoint.interval = interval;
  options.tracer = benchReport.tracer();
  options.metrics = benchReport.metrics();
  if (retryAttempts > 0) {
    options.retry.maxAttempts = retryAttempts;
  }
  if (failAtStep > 0) {
    bool failed = false;
    options.onBarrier = [failAtStep, failed](int step) mutable {
      if (!failed && step == failAtStep) {
        failed = true;
        throw SimulatedFailure("injected shard failure");
      }
    };
  }
  Engine engine(store, options);
  SmoothJob job(n, rounds, deterministic);
  return runJob(engine, job);
}

void report(const char* label, const JobResult& r) {
  std::cout << "  " << std::left << std::setw(42) << label << std::right
            << std::fixed << std::setprecision(3) << std::setw(8)
            << r.elapsedSeconds << " s" << std::setw(8)
            << r.metrics.checkpoints << " ckpts" << std::setw(6)
            << r.metrics.recoveries << " recov\n";
}

}  // namespace

/// Parse `--faults <seed>` / `--faults=<seed>`; false when absent.
bool parseFaultSeed(int argc, char** argv, std::uint64_t* seed) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--faults" && i + 1 < argc) {
      *seed = std::strtoull(argv[i + 1], nullptr, 10);
      return true;
    }
    if (arg.rfind("--faults=", 0) == 0) {
      *seed = std::strtoull(argv[i] + std::strlen("--faults="), nullptr, 10);
      return true;
    }
  }
  return false;
}

void runFaultSection(bench::BenchReport& benchReport, std::uint32_t n,
                     int rounds, std::uint64_t seed) {
  std::cout << "\nFault injection, seed " << seed << ":\n";
  benchReport.setInfo("fault_seed", std::to_string(seed));

  const JobResult clean = runSmooth(benchReport, n, rounds, true, true, 4, 0);
  report("fault-free baseline (interval 4)", clean);

  // Transient chaos the retry layer absorbs.  Scoped to the engine's
  // internal "__ebsp" tables: every access to those sits inside a retry
  // scope, so escalations (and therefore recoveries) stay at zero and
  // the delta over the baseline is pure retry + backoff overhead.
  auto chaos = std::make_shared<fault::FaultInjector>(
      fault::FaultPlan::storeChaos(seed, 0.001, "__ebsp"));
  const JobResult chaosed =
      runSmooth(benchReport, n, rounds, true, true, 4, 0, chaos);
  report("store chaos p=0.001 (retries absorb)", chaosed);
  std::cout << "    injected " << chaos->injected() << ", retry overhead "
            << std::fixed << std::setprecision(3)
            << chaosed.elapsedSeconds - clean.elapsedSeconds << " s\n";
  benchReport.setInfo("fault_chaos_injected", std::to_string(chaos->injected()));
  benchReport.setInfo("fault_chaos_overhead_s",
                      std::to_string(chaosed.elapsedSeconds -
                                     clean.elapsedSeconds));

  // A transport drain that out-fails the retry budget (one attempt, so
  // the first injection escalates) forces engine-level recovery: roll
  // back to the last checkpoint and replay.  maxInjections caps the rule
  // so the replay itself runs clean.
  fault::FaultPlan escalation;
  escalation.seed = seed;
  fault::FaultRule rule;
  rule.ops = fault::maskOf(fault::Op::kDrain);
  rule.tableSubstring = "__ebsp_tr_";
  rule.nth = 5;  // Per-part ordinal: fires within ~rounds drains per part.
  rule.maxInjections = 1;
  escalation.rules.push_back(rule);
  auto escalate = std::make_shared<fault::FaultInjector>(escalation);
  const JobResult recovered = runSmooth(benchReport, n, rounds, true, true, 4,
                                        0, escalate, /*retryAttempts=*/1);
  report("forced escalation (ckpt recovery)", recovered);
  std::cout << "    injected " << escalate->injected()
            << ", recovery overhead " << std::fixed << std::setprecision(3)
            << recovered.elapsedSeconds - clean.elapsedSeconds << " s\n";
  benchReport.setInfo("fault_recoveries",
                      std::to_string(recovered.metrics.recoveries));
  benchReport.setInfo("fault_recovery_overhead_s",
                      std::to_string(recovered.elapsedSeconds -
                                     clean.elapsedSeconds));
}

int main(int argc, char** argv) {
  bench::BenchReport benchReport(argc, argv, "ablation_checkpoint");
  const auto n = static_cast<std::uint32_t>(
      bench::envLong("RIPPLE_ABL_COMPONENTS", 30'000));
  const int rounds = 12;
  benchReport.setInfo("components", std::to_string(n));

  bench::printHeader(
      "Ablation: checkpointing cost and deterministic fast recovery");
  std::cout << n << " components, " << rounds << " rounds\n\n";

  report("no checkpointing",
         runSmooth(benchReport, n, rounds, true, false, 1, 0));
  report("non-deterministic (ckpt every barrier)",
         runSmooth(benchReport, n, rounds, false, true, 4, 0));
  report("deterministic, interval 4",
         runSmooth(benchReport, n, rounds, true, true, 4, 0));
  report("deterministic, interval 4, fail@step 7",
         runSmooth(benchReport, n, rounds, true, true, 4, 7));

  std::uint64_t faultSeed = 0;
  if (parseFaultSeed(argc, argv, &faultSeed)) {
    runFaultSection(benchReport, n, rounds, faultSeed);
  }
  benchReport.write();
  return 0;
}
