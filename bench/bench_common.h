// Shared helpers for the table-reproduction benchmark harnesses.

#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "kvstore/log_store.h"
#include "kvstore/store_factory.h"
#include "kvstore/table.h"
#include "obs/report.h"

namespace ripple::bench {

inline double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

inline long envLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end == v ? fallback : parsed;
}

/// Scale factor applied to workload sizes so the harnesses can run at
/// paper scale (RIPPLE_SCALE=1) or faster (default smaller).
inline double workloadScale(double fallback) {
  return envDouble("RIPPLE_SCALE", fallback);
}

inline int trialCount(int fallback) {
  return static_cast<int>(envLong("RIPPLE_TRIALS", fallback));
}

inline void printHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Per-binary run-report harness: parses `--report <path>` (also
/// `--report=<path>`) from the command line and, when present, owns the
/// Tracer and MetricsRegistry the harness threads through its engines and
/// stores.  write() snapshots both into one RunReport JSON document (see
/// obs/report.h).  Without --report every accessor returns null and the
/// bench runs untraced, exactly as before.
///
/// `--store <partitioned|shard|local|remote|log>` (also `--store=`) selects the K/V
/// backend; absent it defers to RIPPLE_STORE via the factory.  Harnesses
/// create their store through makeStore() so the flag takes effect.
class BenchReport {
 public:
  BenchReport(int argc, char** argv, std::string label)
      : label_(std::move(label)) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--report") {
        if (i + 1 < argc) {
          path_ = argv[++i];
        } else {
          std::cerr << "warning: --report requires a path; no report will "
                       "be written\n";
        }
      } else if (arg.rfind("--report=", 0) == 0) {
        path_ = std::string(arg.substr(9));
        if (path_.empty()) {
          std::cerr << "warning: --report= given an empty path; no report "
                       "will be written\n";
        }
      } else if (arg == "--threads") {
        if (i + 1 < argc) {
          parseThreads(argv[++i]);
        } else {
          std::cerr << "warning: --threads requires a count; ignored\n";
        }
      } else if (arg.rfind("--threads=", 0) == 0) {
        parseThreads(std::string(arg.substr(10)));
      } else if (arg == "--store") {
        if (i + 1 < argc) {
          parseStore(argv[++i]);
        } else {
          std::cerr << "warning: --store requires a backend name; ignored\n";
        }
      } else if (arg.rfind("--store=", 0) == 0) {
        parseStore(std::string(arg.substr(8)));
      } else if (arg == "--store-path") {
        if (i + 1 < argc) {
          storePath_ = argv[++i];
        } else {
          std::cerr << "warning: --store-path requires a directory; "
                       "ignored\n";
        }
      } else if (arg.rfind("--store-path=", 0) == 0) {
        storePath_ = std::string(arg.substr(13));
      } else if (arg == "--store-mem") {
        if (i + 1 < argc) {
          parseStoreMem(argv[++i]);
        } else {
          std::cerr << "warning: --store-mem requires a byte size; "
                       "ignored\n";
        }
      } else if (arg.rfind("--store-mem=", 0) == 0) {
        parseStoreMem(std::string(arg.substr(12)));
      }
    }
    if (threads_ > 0) {
      setInfo("threads", std::to_string(threads_));
    }
    // A --threads scaling run is only interpretable next to the host's
    // core count: on a single-core box the wide-pool legs measure
    // scheduling overhead, not parallel speedup.
    setInfo("hw_cores", std::to_string(std::thread::hardware_concurrency()));
    if (enabled()) {
      tracer_ = std::make_unique<obs::Tracer>();
      registry_ = std::make_unique<obs::MetricsRegistry>();
    }
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Engine worker-thread count from `--threads N` / `--threads=N`;
  /// 0 when absent (engine default: RIPPLE_THREADS or legacy dispatch).
  /// Harnesses forward this into EngineOptions::threads.
  [[nodiscard]] int threads() const { return threads_; }

  /// Null when --report was not given; engines treat null as disabled.
  [[nodiscard]] obs::Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() { return registry_.get(); }

  /// Backend from `--store`; kDefault (RIPPLE_STORE or partitioned)
  /// when the flag was absent.  Forward into kv::makeStore / the engine.
  [[nodiscard]] kv::StoreBackend storeBackend() const { return store_; }

  /// Directory from `--store-path` for the durable "log" backend; empty
  /// defers to RIPPLE_STORE_PATH / an ephemeral temp directory.
  [[nodiscard]] const std::string& storePath() const { return storePath_; }

  /// Resident-memory budget from `--store-mem <bytes|K|M|G>` for the
  /// "log" backend (out-of-core eviction, DESIGN.md §14); 0 defers to
  /// RIPPLE_STORE_MEM via the factory (unset = unbounded).
  [[nodiscard]] std::size_t storeMemoryBytes() const { return storeMem_; }

  /// Create the harness's store on the selected backend and record the
  /// backend name in the report info.  Each call gets its own
  /// subdirectory under --store-path: benchmark variants expect a fresh
  /// store (their loaders createTable unconditionally), exactly like
  /// the ephemeral default — the subdirectories are left behind for
  /// inspection rather than wiped.
  [[nodiscard]] kv::KVStorePtr makeStore(std::uint32_t containers) {
    std::string path = storePath_;
    if (!path.empty()) {
      path += "/store-" + std::to_string(storeCount_++);
    }
    kv::KVStorePtr store = kv::makeStore(store_, containers, path, storeMem_);
    setInfo("store", store->backendName());
    if (storeMem_ > 0) {
      setInfo("store_mem", std::to_string(storeMem_));
    }
    return store;
  }

  /// Mirror the store's counters into the report's registry under a
  /// per-backend `store.<backend>.*` prefix, so reports from different
  /// backends stay distinguishable side by side.  The log backend
  /// additionally exposes its segment/compaction internals.
  void bindStore(kv::KVStore& store) {
    if (registry_) {
      store.metrics().bindRegistry(
          *registry_, std::string("store.") + store.backendName());
      if (auto* log = dynamic_cast<kv::LogStore*>(&store)) {
        log->bindLogMetrics(*registry_);
      }
    }
  }

  void setInfo(const std::string& key, std::string value) {
    info_[key] = std::move(value);
  }

  /// Write the report file; no-op without --report.  A bad path must not
  /// take down the bench after the measurements already printed.
  void write() {
    if (!enabled()) {
      return;
    }
    obs::RunReport report =
        obs::RunReport::capture(label_, registry_.get(), tracer_.get());
    report.info = info_;
    try {
      report.writeFile(path_);
      std::cout << "\nRun report written to " << path_ << "\n";
    } catch (const std::exception& e) {
      std::cerr << "warning: " << e.what() << "\n";
    }
  }

 private:
  void parseThreads(const std::string& value) {
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || parsed < 0) {
      std::cerr << "warning: --threads expects a non-negative integer, got '"
                << value << "'; ignored\n";
      return;
    }
    threads_ = static_cast<int>(parsed);
  }

  void parseStoreMem(const std::string& value) {
    if (std::optional<std::size_t> parsed = kv::parseByteSize(value)) {
      storeMem_ = *parsed;
      return;
    }
    std::cerr << "warning: --store-mem expects <digits>[K|M|G], got '" << value
              << "'; ignored\n";
  }

  void parseStore(const std::string& value) {
    if (std::optional<kv::StoreBackend> parsed =
            kv::parseStoreBackend(value)) {
      store_ = *parsed;
      return;
    }
    std::cerr << "warning: --store expects partitioned|shard|local|remote|log, got '"
              << value << "'; ignored\n";
  }

  std::string label_;
  std::string path_;
  int threads_ = 0;
  kv::StoreBackend store_ = kv::StoreBackend::kDefault;
  std::string storePath_;
  std::size_t storeMem_ = 0;
  int storeCount_ = 0;
  std::map<std::string, std::string> info_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
};

}  // namespace ripple::bench
