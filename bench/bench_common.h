// Shared helpers for the table-reproduction benchmark harnesses.

#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace ripple::bench {

inline double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

inline long envLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end == v ? fallback : parsed;
}

/// Scale factor applied to workload sizes so the harnesses can run at
/// paper scale (RIPPLE_SCALE=1) or faster (default smaller).
inline double workloadScale(double fallback) {
  return envDouble("RIPPLE_SCALE", fallback);
}

inline int trialCount(int fallback) {
  return static_cast<int>(envLong("RIPPLE_TRIALS", fallback));
}

inline void printHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace ripple::bench
