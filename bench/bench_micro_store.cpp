// Microbenchmarks (google-benchmark) for the substrate layers: store
// point ops (local vs. routed), enumeration, the transport spill path,
// codecs, and Huang weight arithmetic.  These quantify the cost structure
// the architectural comparisons rest on (e.g. §IV-A's claim that spill
// batching amortizes cross-part traffic).

#include <benchmark/benchmark.h>

#include "common/dyadic.h"
#include "ebsp/transport.h"
#include "kvstore/local_store.h"
#include "kvstore/log_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/shard_store.h"
#include "kvstore/store_util.h"

using namespace ripple;

namespace {

kv::TablePtr makeTable(kv::KVStore& store, const std::string& name,
                       std::uint32_t parts) {
  kv::TableOptions options;
  options.parts = parts;
  return store.createTable(name, options);
}

void BM_LocalStorePut(benchmark::State& state) {
  auto store = kv::LocalStore::create();
  auto table = makeTable(*store, "t", 4);
  std::uint64_t i = 0;
  for (auto _ : state) {
    table->put(encodeToBytes(i++ % 100000), "value");
  }
}
BENCHMARK(BM_LocalStorePut);

void BM_PartitionedPutRouted(benchmark::State& state) {
  auto store = kv::PartitionedStore::create(4);
  auto table = makeTable(*store, "t", 4);
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Caller thread is never a container thread: every put is routed
    // through the owner's short-op executor (the "remote" path).
    table->put(encodeToBytes(i++ % 100000), "value");
  }
  state.counters["remoteOps"] =
      static_cast<double>(store->metrics().remoteOps.load());
}
BENCHMARK(BM_PartitionedPutRouted);

void BM_PartitionedPutLocal(benchmark::State& state) {
  auto store = kv::PartitionedStore::create(1);
  auto table = makeTable(*store, "t", 1);
  // Run the loop body collocated with the single part: the local path.
  store->runInPart(*table, 0, [&] {
    std::uint64_t i = 0;
    for (auto _ : state) {
      table->put(encodeToBytes(i++ % 100000), "value");
    }
  });
  state.counters["localOps"] =
      static_cast<double>(store->metrics().localOps.load());
}
BENCHMARK(BM_PartitionedPutLocal);

void BM_PartitionedGetRouted(benchmark::State& state) {
  auto store = kv::PartitionedStore::create(4);
  auto table = makeTable(*store, "t", 4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    table->put(encodeToBytes(i), "value");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->get(encodeToBytes(i++ % 10000)));
  }
}
BENCHMARK(BM_PartitionedGetRouted);

void BM_ShardPutDirect(benchmark::State& state) {
  // The shard backend serves point ops on the caller's thread under
  // stripe locks (no executor hop): contrast with BM_PartitionedPutRouted.
  auto store = kv::ShardStore::create(4);
  auto table = makeTable(*store, "t", 4);
  std::uint64_t i = 0;
  for (auto _ : state) {
    table->put(encodeToBytes(i++ % 100000), "value");
  }
  state.counters["remoteOps"] =
      static_cast<double>(store->metrics().remoteOps.load());
}
BENCHMARK(BM_ShardPutDirect);

void BM_ShardGet(benchmark::State& state) {
  auto store = kv::ShardStore::create(4);
  auto table = makeTable(*store, "t", 4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    table->put(encodeToBytes(i), "value");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->get(encodeToBytes(i++ % 10000)));
  }
}
BENCHMARK(BM_ShardGet);

void BM_ShardUbiquitousCachedGet(benchmark::State& state) {
  // Hot ubiquitous reads served from the LRU block cache.
  auto store = kv::ShardStore::create(4);
  kv::TableOptions options;
  options.ubiquitous = true;
  auto table = store->createTable("u", options);
  for (std::uint64_t i = 0; i < 64; ++i) {
    table->put(encodeToBytes(i), "value");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->get(encodeToBytes(i++ % 64)));
  }
  state.counters["cacheHits"] =
      static_cast<double>(store->metrics().cacheHits.load());
}
BENCHMARK(BM_ShardUbiquitousCachedGet);

void BM_LogStoreGetResident(benchmark::State& state) {
  // Unbounded log store: point reads served from the in-memory fold.
  // Baseline for BM_LogStoreGetEvicted.
  kv::LogStore::Options o;
  o.backgroundCompaction = false;
  auto store = kv::LogStore::open(std::move(o));
  auto table = makeTable(*store, "t", 4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    table->put(encodeToBytes(i), "value");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->get(encodeToBytes(i++ % 10000)));
  }
  const kv::LogStore::Stats s = store->stats();
  state.counters["segReadHits"] = static_cast<double>(s.segmentReadHits);
  state.counters["residentBytes"] = static_cast<double>(s.residentBytes);
}
BENCHMARK(BM_LogStoreGetResident);

void BM_LogStoreGetEvicted(benchmark::State& state) {
  // A budget ~30x smaller than the dataset: loading runs through batched
  // evictions and reads mostly go through the sealed-segment mmap
  // (DESIGN.md §14).  The counters prove it.  (A tiny budget would force
  // one durable compaction per put and measure fsync, not reads.)
  kv::LogStore::Options o;
  o.backgroundCompaction = false;
  o.memoryBudgetBytes = 32 * 1024;
  auto store = kv::LogStore::open(std::move(o));
  auto table = makeTable(*store, "t", 4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    table->put(encodeToBytes(i), "value");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->get(encodeToBytes(i++ % 10000)));
  }
  const kv::LogStore::Stats s = store->stats();
  state.counters["segReadHits"] = static_cast<double>(s.segmentReadHits);
  state.counters["segReadMisses"] = static_cast<double>(s.segmentReadMisses);
  state.counters["evictions"] = static_cast<double>(s.evictions);
  state.counters["residentBytes"] = static_cast<double>(s.residentBytes);
}
BENCHMARK(BM_LogStoreGetEvicted);

void BM_Enumerate(benchmark::State& state) {
  auto store = kv::PartitionedStore::create(4);
  auto table = makeTable(*store, "t", 4);
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    table->put(encodeToBytes(i), "value");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv::countPairs(*table));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Enumerate)->Arg(1000)->Arg(100000);

void BM_SpillWriteDrain(benchmark::State& state) {
  auto store = kv::PartitionedStore::create(4);
  kv::TableOptions options;
  options.parts = 4;
  options.partitioner = ebsp::makeTransportPartitioner(4);
  auto transport = store->createTable("tr", std::move(options));
  auto refPartitioner = makeDefaultPartitioner(4);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ebsp::SpillWriter writer(*transport, 0, refPartitioner, {}, 4096);
    for (std::size_t i = 0; i < batch; ++i) {
      writer.addMessage(encodeToBytes<std::uint64_t>(i), "payload");
    }
    writer.flushAll();
    for (std::uint32_t p = 0; p < 4; ++p) {
      benchmark::DoNotOptimize(transport->drainPart(p));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpillWriteDrain)->Arg(1000)->Arg(50000);

void BM_SpillWithCombiner(benchmark::State& state) {
  auto store = kv::PartitionedStore::create(4);
  kv::TableOptions options;
  options.parts = 4;
  options.partitioner = ebsp::makeTransportPartitioner(4);
  auto transport = store->createTable("tr", std::move(options));
  auto refPartitioner = makeDefaultPartitioner(4);
  auto combiner = [](BytesView, BytesView a, BytesView) { return Bytes(a); };
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ebsp::SpillWriter writer(*transport, 0, refPartitioner, ebsp::CombinerOps(combiner), 4096);
    for (std::size_t i = 0; i < batch; ++i) {
      // 100 distinct destinations: heavy combining.
      writer.addMessage(encodeToBytes<std::uint64_t>(i % 100), "payload");
    }
    writer.flushAll();
    for (std::uint32_t p = 0; p < 4; ++p) {
      benchmark::DoNotOptimize(transport->drainPart(p));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SpillWithCombiner)->Arg(50000);

void BM_CodecRoundtrip(benchmark::State& state) {
  std::vector<std::uint32_t> edges(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    edges[i] = i * 977;
  }
  for (auto _ : state) {
    const Bytes encoded = encodeToBytes(edges);
    benchmark::DoNotOptimize(
        decodeFromBytes<std::vector<std::uint32_t>>(encoded));
  }
}
BENCHMARK(BM_CodecRoundtrip);

void BM_DyadicSplitCredit(benchmark::State& state) {
  for (auto _ : state) {
    WeightLedger ledger;
    DyadicWeight w = DyadicWeight::one();
    // Simulate a 200-hop message chain: split, credit remainder, repeat.
    for (int i = 0; i < 200; ++i) {
      const WeightSplit split = splitWeight(w, 1);
      ledger.credit(split.remainder);
      w = split.child;
    }
    ledger.credit(w);
    benchmark::DoNotOptimize(ledger.complete());
  }
}
BENCHMARK(BM_DyadicSplitCredit);

}  // namespace
