// Reproduces Table II: "Block multiplications in each step" for the
// BSPified SUMMA schedule with M = N = 3.
//
// Two independent sources must agree:
//   1. the analytic schedule simulator (no engine, no arithmetic), and
//   2. an instrumented synchronized run of the real SUMMA job on the
//      EBSP engine (tiny blocks).
//
// Paper row (7 steps): 1 3 6 3 6 3 5 — "seven steps are required, even
// though a given component does only three block multiplications ...
// introducing the synchronization required by BSP has slowed down this
// example by a factor of 7/3."
//
// Environment: RIPPLE_SUMMA_GRID (default 3) to print other grids too.

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "kvstore/partitioned_store.h"
#include "matrix/summa.h"
#include "matrix/summa_schedule.h"

using namespace ripple;

namespace {

void printRow(const char* label, const std::vector<std::uint64_t>& mults) {
  std::cout << std::setw(22) << label;
  for (const std::uint64_t m : mults) {
    std::cout << std::setw(5) << m;
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report(argc, argv, "table2_summa_steps");
  const auto grid = static_cast<std::uint32_t>(
      bench::envLong("RIPPLE_SUMMA_GRID", 3));
  report.setInfo("grid", std::to_string(grid));

  bench::printHeader("Table II: Block multiplications in each step (M=N=" +
                     std::to_string(grid) + ")");

  // Source 1: analytic schedule.
  const matrix::SummaSchedule schedule = matrix::simulateSummaSchedule(grid);

  // Source 2: instrumented engine run with small blocks.
  auto instr = std::make_shared<matrix::SummaInstrumentation>();
  {
    Rng rng(5);
    matrix::BlockMatrix a(grid, 8);
    matrix::BlockMatrix b(grid, 8);
    a.fillRandom(rng);
    b.fillRandom(rng);
    auto store = report.makeStore(grid * grid);
    report.bindStore(*store);
    ebsp::EngineOptions eopts;
    eopts.threads = report.threads();
    eopts.tracer = report.tracer();
    eopts.metrics = report.metrics();
    ebsp::Engine engine(store, eopts);
    matrix::SummaOptions options;
    options.synchronized = true;
    options.parts = grid * grid;
    options.instrumentation = instr;
    matrix::runSumma(engine, a, b, options);
  }
  std::vector<std::uint64_t> measured;
  for (const auto& [step, mults] : instr->multsPerStep()) {
    while (static_cast<int>(measured.size()) < step - 1) {
      measured.push_back(0);
    }
    measured.push_back(mults);
  }

  std::cout << std::setw(22) << "Step";
  for (std::size_t s = 1; s <= schedule.steps(); ++s) {
    std::cout << std::setw(5) << s;
  }
  std::cout << "\n";
  printRow("Simulated schedule", schedule.multsPerStep);
  printRow("Engine (measured)", measured);
  if (grid == 3) {
    printRow("Paper", {1, 3, 6, 3, 6, 3, 5});
  }
  std::cout << "\nTotal multiplies: " << schedule.totalMultiplies() << " (= "
            << grid << "^3), steps: " << schedule.steps()
            << ", per-component multiplies: " << grid
            << ", BSP slowdown factor: " << std::fixed << std::setprecision(3)
            << schedule.slowdownFactor(grid) << " (paper: 7/3 = 2.333 for "
            << "grid 3)\n";
  const bool match = measured == schedule.multsPerStep;
  std::cout << "Engine vs simulator: " << (match ? "MATCH" : "MISMATCH")
            << "\n";
  report.write();
  return match ? 0 : 1;
}
