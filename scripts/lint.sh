#!/usr/bin/env bash
# ripple::check lint wall (DESIGN.md §12).
#
# Mechanical rules that the compiler cannot enforce by itself:
#
#   1. No raw standard-library mutexes or guards in src/: every lock must
#      be a ranked_mutex.h type so the lock-rank validator sees it.
#   2. No blocking wire calls while a lock guard is live in src/net: a
#      socket send/recv under a server or registry lock stalls every
#      thread behind that lock on a slow peer (and the rank validator
#      cannot see it, because socket I/O takes no ripple lock at all).
#   3. Wire serialization goes through the serde layer, never through
#      host-endian punning: htons/ntohl-family calls and integer
#      reinterpret_casts are confined to socket.cpp (sockaddr plumbing).
#   4. Thread-safety attributes are spelled via thread_annotations.h
#      macros, never raw __attribute__((...)) — the macros are the only
#      place the Clang-only gating lives.
#   5. Raw file-durability syscalls (::open/::write/::fsync/::mmap and
#      friends) are confined to src/kvstore/segment.cpp: the log store's
#      crash-consistency argument (DESIGN.md §14) rests on every byte
#      reaching disk through AppendFile/writeFileDurable/syncDir, so a
#      stray ::write anywhere else silently escapes the epoch discipline.
#
# Usage: scripts/lint.sh   (exits non-zero on any violation)

set -u
cd "$(dirname "$0")/.."

fail=0
report() {
  echo "lint: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  fail=1
}

# --- Rule 1: raw std mutexes/guards outside ranked_mutex.h ------------------
raw_mutex=$(grep -rn --include='*.h' --include='*.cpp' \
  -e 'std::mutex' -e 'std::shared_mutex' -e 'std::recursive_mutex' \
  -e 'std::timed_mutex' -e 'std::lock_guard' -e 'std::unique_lock' \
  -e 'std::shared_lock' -e 'std::scoped_lock' \
  src/ | grep -v 'src/common/ranked_mutex\.h' || true)
if [ -n "$raw_mutex" ]; then
  report "raw std mutex/guard in src/ (use ranked_mutex.h types)" "$raw_mutex"
fi

# std::condition_variable (non-_any) cannot wait on a ranked UniqueLock.
raw_cv=$(grep -rn --include='*.h' --include='*.cpp' \
  'std::condition_variable\b' src/ | grep -v 'condition_variable_any' \
  | grep -v 'src/common/ranked_mutex\.h' || true)
if [ -n "$raw_cv" ]; then
  report "std::condition_variable in src/ (use std::condition_variable_any)" \
    "$raw_cv"
fi

# --- Rule 2: blocking wire calls under a live lock guard in src/net ---------
blocking=$(python3 - <<'PYEOF'
import re, sys, glob

GUARD = re.compile(r'\b(?:LockGuard|UniqueLock|SharedLock)\s+\w+\s*[({]')
BLOCKING = re.compile(
    r'\b(?:sendAll|recvExact|recvSome|recvAll)\s*\(|'
    r'\bSocket::connect\s*\(|'
    r'(?:->|\.)\s*call\s*\(')

out = []
for path in sorted(glob.glob('src/net/**/*.cpp', recursive=True) +
                   glob.glob('src/net/**/*.h', recursive=True)):
    # Track, per brace depth, whether a guard was declared at that depth;
    # a blocking call is flagged while any shallower-or-equal depth holds
    # a live guard.  Lines may opt out with  // lint: unlocked-io
    guard_depths = []
    depth = 0
    with open(path) as f:
        for ln, line in enumerate(f, 1):
            code = line.split('//')[0]
            if GUARD.search(code):
                guard_depths.append(depth)
            if (BLOCKING.search(code) and guard_depths and
                    'lint: unlocked-io' not in line):
                out.append(f'{path}:{ln}: {line.rstrip()}')
            for ch in code:
                if ch == '{':
                    depth += 1
                elif ch == '}':
                    depth -= 1
                    while guard_depths and guard_depths[-1] >= depth:
                        guard_depths.pop()
print('\n'.join(out))
PYEOF
)
if [ -n "$blocking" ]; then
  report "blocking wire call while a lock guard is live in src/net" \
    "$blocking"
fi

# --- Rule 3: host-endian punning outside socket.cpp -------------------------
endian=$(grep -rn --include='*.h' --include='*.cpp' \
  -e '\bhtons\b' -e '\bhtonl\b' -e '\bntohs\b' -e '\bntohl\b' \
  -e '\bhtobe[0-9]*\b' -e '\bbe[0-9]*toh\b' \
  src/ | grep -v 'src/net/socket\.cpp' || true)
if [ -n "$endian" ]; then
  report "host-endian conversion outside socket.cpp (use common/serde.h)" \
    "$endian"
fi

punning=$(grep -rn --include='*.h' --include='*.cpp' \
  'reinterpret_cast<\s*\(const\s*\)\?u\?int[0-9]*_t' src/net src/common \
  | grep -v 'src/net/socket\.cpp' || true)
if [ -n "$punning" ]; then
  report "integer reinterpret_cast punning in serde/wire code" "$punning"
fi

# --- Rule 4: raw thread-safety attributes outside thread_annotations.h ------
raw_attr=$(grep -rn --include='*.h' --include='*.cpp' \
  -e '__attribute__((guarded_by' -e '__attribute__((capability' \
  -e '__attribute__((requires_capability' \
  -e '__attribute__((acquire_capability' \
  -e '__attribute__((release_capability' \
  -e '__attribute__((scoped_lockable' \
  src/ | grep -v 'src/common/thread_annotations\.h' || true)
if [ -n "$raw_attr" ]; then
  report "raw thread-safety attribute (use thread_annotations.h macros)" \
    "$raw_attr"
fi

# --- Rule 5: raw file-durability syscalls outside segment.cpp ---------------
# Global-namespace syscall calls (::open(...), ::fsync(...), ...).  The
# leading [^A-Za-z0-9_>] keeps C++ method definitions like LogStore::open(
# from matching.  Socket-fd ::close in src/net is not on the list: closing
# a socket is not file durability.
raw_io=$(grep -rnE --include='*.h' --include='*.cpp' \
  '(^|[^A-Za-z0-9_>])::(open|write|read|fsync|fstat|fdatasync|ftruncate|mmap|munmap|pread|pwrite)\s*\(' \
  src/ | grep -v 'src/kvstore/segment\.cpp' || true)
if [ -n "$raw_io" ]; then
  report "raw file syscall outside kvstore/segment.cpp (use AppendFile/writeFileDurable/syncDir)" \
    "$raw_io"
fi

# Unqualified spellings of the durability-only syscalls (no sockets-vs-files
# ambiguity for these, so the rule needs no allowlist beyond segment.cpp).
raw_sync=$(grep -rnE --include='*.h' --include='*.cpp' \
  '(^|[^A-Za-z0-9_:.>])(fsync|fdatasync|mmap|munmap|ftruncate|pwrite|pread)\s*\(' \
  src/ | grep -v 'src/kvstore/segment\.cpp' \
  | grep -vE ':[0-9]+:\s*//' || true)
if [ -n "$raw_sync" ]; then
  report "raw durability syscall outside kvstore/segment.cpp (use segment.h helpers)" \
    "$raw_sync"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
