#!/usr/bin/env bash
# Out-of-core drill for the log store (DESIGN.md §14): run an analytics
# workload once unbounded, then again with a resident-memory budget far
# smaller than the dataset — the bounded run executing under a hard
# `ulimit -v` address-space cap so a real (unaccounted) memory blow-up
# dies loudly instead of passing on swap.  The bounded digest must be
# byte-identical to the unbounded digest, and the bounded run must
# report evictions > 0 (the binary itself fails otherwise), so "passed"
# can never mean "the budget never engaged".
#
# ulimit -v counts file-backed mmaps too, so the cap covers the sealed
# segments the read-through path maps — it is sized for the smoke
# dataset, not just the budget.
#
# Usage:
#   scripts/bench_outofcore.sh [--smoke] [--threads=N] [--build-dir=DIR]
#                              [--budget=SPEC] [--vmem-kb=N]
#
#   --smoke        smaller workload (CI-sized)
#   --threads=N    engine threads (default 2)
#   --build-dir=D  where the binaries live (default build)
#   --budget=S     store budget for the bounded run (default 16K)
#   --vmem-kb=N    ulimit -v for the bounded run, KiB (default 2097152)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=""
THREADS=2
BUILD_DIR="build"
BUDGET="16K"
VMEM_KB=2097152
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    --threads=*) THREADS="${arg#--threads=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --budget=*) BUDGET="${arg#--budget=}" ;;
    --vmem-kb=*) VMEM_KB="${arg#--vmem-kb=}" ;;
    *) echo "usage: $0 [--smoke] [--threads=N] [--build-dir=DIR]" \
            "[--budget=SPEC] [--vmem-kb=N]" >&2; exit 2 ;;
  esac
done

BENCH_BIN="$BUILD_DIR/bench/bench_outofcore"
if [[ ! -x "$BENCH_BIN" ]]; then
  echo "error: $BENCH_BIN not built (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

WORK_DIR="$(mktemp -d)"
cleanup() { rm -rf "$WORK_DIR"; }
trap cleanup EXIT

status=0
for workload in pagerank sssp; do
  echo "== $workload: unbounded baseline =="
  "$BENCH_BIN" --workload "$workload" --budget 0 \
    --store-path "$WORK_DIR/$workload-unbounded" \
    --threads "$THREADS" $SMOKE | tee "$WORK_DIR/$workload-unbounded.out"

  # One variant per process: the address-space cap applies only to the
  # bounded leg, and digests are compared across the two runs.
  echo "== $workload: budget $BUDGET under ulimit -v ${VMEM_KB}KiB =="
  ( ulimit -v "$VMEM_KB"
    exec "$BENCH_BIN" --workload "$workload" --budget "$BUDGET" \
      --store-path "$WORK_DIR/$workload-bounded" \
      --threads "$THREADS" $SMOKE
  ) | tee "$WORK_DIR/$workload-bounded.out"

  tag="$(echo "$workload" | tr '[:lower:]' '[:upper:]')_DIGEST"
  base="$(awk -v t="$tag" '$1 == t {print $2}' \
          "$WORK_DIR/$workload-unbounded.out")"
  bounded="$(awk -v t="$tag" '$1 == t {print $2}' \
             "$WORK_DIR/$workload-bounded.out")"
  if [[ -z "$base" || -z "$bounded" || "$base" != "$bounded" ]]; then
    echo "MISMATCH $tag: unbounded=$base bounded=$bounded"
    status=1
  else
    echo "MATCH    $tag: $base"
  fi
  if ! grep -q '^OUTOFCORE_OK$' "$WORK_DIR/$workload-bounded.out"; then
    echo "MISSING OUTOFCORE_OK in bounded $workload run"
    status=1
  fi
done

if [[ "$status" -eq 0 ]]; then
  echo "BENCH_OUTOFCORE OK (bounded digests match unbounded)"
else
  echo "BENCH_OUTOFCORE FAILED"
fi
exit "$status"
