#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite.
#
# Usage:
#   scripts/verify.sh                 # default RelWithDebInfo build
#   RIPPLE_SANITIZE=address scripts/verify.sh
#   RIPPLE_SANITIZE=thread  scripts/verify.sh
#
# Sanitized builds use a separate build directory so they never pollute
# the default tree.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${RIPPLE_SANITIZE:-}"
BUILD_DIR="build"
CMAKE_ARGS=()
if [[ -n "${SANITIZE}" ]]; then
  BUILD_DIR="build-${SANITIZE}"
  CMAKE_ARGS+=("-DRIPPLE_SANITIZE=${SANITIZE}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
