#!/usr/bin/env bash
# Durable restart-resume drill for the log store (DESIGN.md §14): run the
# SSSP driver once uninterrupted (baseline), once to a kill -9 mid-job
# (crash), then reopen the crashed store directory and resume.  The
# resumed run must report at least one engine recovery and its final
# distance digest must be byte-identical to the baseline — recovery to
# the last committed epoch plus checkpoint replay is invisible in the
# final state.
#
# Usage:
#   scripts/bench_durable.sh [--smoke] [--threads=N] [--build-dir=DIR]
#
#   --smoke        smaller workload (CI-sized)
#   --threads=N    engine threads (default 4)
#   --build-dir=D  where the binaries live (default build)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=""
THREADS=4
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    --threads=*) THREADS="${arg#--threads=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "usage: $0 [--smoke] [--threads=N] [--build-dir=DIR]" >&2; exit 2 ;;
  esac
done

DRIVER_BIN="$BUILD_DIR/apps/ripple_durable_driver"
if [[ ! -x "$DRIVER_BIN" ]]; then
  echo "error: $DRIVER_BIN not built (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

WORK_DIR="$(mktemp -d)"
DRIVER_PID=""
cleanup() {
  [[ -n "$DRIVER_PID" ]] && kill -9 "$DRIVER_PID" 2>/dev/null || true
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# --- Baseline: uninterrupted run on its own store directory. -------------
echo "== baseline: uninterrupted run =="
"$DRIVER_BIN" --phase baseline --store-path "$WORK_DIR/store-baseline" \
  --threads "$THREADS" $SMOKE | tee "$WORK_DIR/baseline.out"

# --- Crash: kill -9 inside the announced window. -------------------------
# The driver prints DURABLE_WINDOW after the first barrier's checkpoint
# has committed its durable epoch, then pauses; the kill lands on a
# committed store with the job only partly done.
echo "== crash: kill -9 mid-job =="
"$DRIVER_BIN" --phase crash --store-path "$WORK_DIR/store-crash" \
  --threads "$THREADS" $SMOKE > "$WORK_DIR/crash.out" 2>&1 &
DRIVER_PID=$!
killed=""
for _ in $(seq 1 200); do
  if grep -q '^DURABLE_WINDOW ' "$WORK_DIR/crash.out" 2>/dev/null; then
    echo "crash: kill -9 driver (pid $DRIVER_PID)"
    kill -9 "$DRIVER_PID" 2>/dev/null || true
    killed=1
    break
  fi
  if ! kill -0 "$DRIVER_PID" 2>/dev/null; then
    break
  fi
  sleep 0.05
done
wait "$DRIVER_PID" 2>/dev/null || true
DRIVER_PID=""
if [[ -z "$killed" ]]; then
  echo "error: crash run never announced its kill window" >&2
  cat "$WORK_DIR/crash.out" >&2
  exit 1
fi
if grep -q '^DRIVER_OK$' "$WORK_DIR/crash.out"; then
  echo "error: crash run finished before the kill landed" >&2
  exit 1
fi
cat "$WORK_DIR/crash.out"

# --- Resume: reopen the crashed store and finish the job. ----------------
echo "== resume: reopen crashed store =="
"$DRIVER_BIN" --phase resume --store-path "$WORK_DIR/store-crash" \
  --threads "$THREADS" $SMOKE | tee "$WORK_DIR/resume.out"

# --- Verdict. ------------------------------------------------------------
status=0
base="$(awk '$1 == "SSSP_DIGEST" {print $2}' "$WORK_DIR/baseline.out")"
resumed="$(awk '$1 == "SSSP_DIGEST" {print $2}' "$WORK_DIR/resume.out")"
if [[ -z "$base" || -z "$resumed" || "$base" != "$resumed" ]]; then
  echo "MISMATCH SSSP_DIGEST: baseline=$base resumed=$resumed"
  status=1
else
  echo "MATCH    SSSP_DIGEST: $base"
fi
recoveries="$(awk '$1 == "DURABLE_RESUMED" {print $2}' "$WORK_DIR/resume.out")"
if [[ "${recoveries:-0}" -lt 1 ]]; then
  echo "RESUME: expected >= 1 recovery, saw ${recoveries:-none} (run was" \
       "not actually resumed)"
  status=1
fi
if ! grep -q '^DRIVER_OK$' "$WORK_DIR/resume.out"; then
  echo "MISSING DRIVER_OK in resume run"
  status=1
fi

if [[ "$status" -eq 0 ]]; then
  echo "BENCH_DURABLE OK (resumed digest matches baseline," \
       "$recoveries recovery(ies))"
else
  echo "BENCH_DURABLE FAILED"
fi
exit "$status"
