#!/usr/bin/env bash
# Multi-process differential bench: run the PageRank/SSSP/SUMMA driver
# once against the in-process partitioned backend and once against N real
# ripple_net_server processes on localhost, and require byte-identical
# state digests (the end-to-end form of the backend differential suite).
#
# Usage:
#   scripts/bench_multiproc.sh [--smoke] [--chaos] [--servers=N] [--build-dir=DIR]
#
#   --smoke        smaller workloads (CI-sized)
#   --chaos        failover drill: kill -9 one server inside each job's
#                  announced CHAOS_WINDOW and restart it on the same port;
#                  digests must still match the fault-free baseline and the
#                  driver's failover ledger must close (DESIGN.md §11)
#   --servers=N    number of server processes (default 2, min 1)
#   --build-dir=D  where the binaries live (default build)
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=""
CHAOS=""
SERVERS=2
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    --chaos) CHAOS="1" ;;
    --servers=*) SERVERS="${arg#--servers=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "usage: $0 [--smoke] [--chaos] [--servers=N] [--build-dir=DIR]" >&2; exit 2 ;;
  esac
done
if [[ "$SERVERS" -lt 1 ]]; then
  echo "error: --servers must be >= 1" >&2
  exit 2
fi

SERVER_BIN="$BUILD_DIR/apps/ripple_net_server"
DRIVER_BIN="$BUILD_DIR/apps/ripple_net_driver"
for bin in "$SERVER_BIN" "$DRIVER_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 2
  fi
done

WORK_DIR="$(mktemp -d)"
SERVER_PIDS=()
cleanup() {
  for pid in "${SERVER_PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${SERVER_PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# --- Baseline: single process, in-process partitioned store. ------------
echo "== baseline: in-process partitioned store =="
RIPPLE_STORE=partitioned "$DRIVER_BIN" $SMOKE | tee "$WORK_DIR/baseline.out"

# --- Remote: N server processes on ephemeral ports. ---------------------
echo "== remote: $SERVERS server process(es) =="
ENDPOINTS=""
PORTS=()
for ((i = 0; i < SERVERS; ++i)); do
  "$SERVER_BIN" --port 0 > "$WORK_DIR/server$i.log" &
  SERVER_PIDS+=($!)
done
for ((i = 0; i < SERVERS; ++i)); do
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^RIPPLE_NET_SERVER LISTENING \([0-9]*\)$/\1/p' \
            "$WORK_DIR/server$i.log")"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "error: server $i never reported a port" >&2
    cat "$WORK_DIR/server$i.log" >&2
    exit 1
  fi
  PORTS+=("$port")
  ENDPOINTS="${ENDPOINTS:+$ENDPOINTS,}127.0.0.1:$port"
done
echo "endpoints: $ENDPOINTS"

KILLS=0
if [[ -n "$CHAOS" ]]; then
  # Failover drill.  The driver announces "CHAOS_WINDOW <job>" after each
  # job's first barrier (checkpoint committed) and pauses; we kill -9 one
  # server — rotating the victim — and restart it on the SAME port
  # (SO_REUSEADDR).  RIPPLE_NET_REDIAL_MS widens the client's dial budget
  # to bridge the restart gap (and exercises the env tuning path).
  RIPPLE_STORE=remote RIPPLE_REMOTE_ENDPOINTS="$ENDPOINTS" \
    RIPPLE_NET_REDIAL_MS=2000 \
    "$DRIVER_BIN" $SMOKE --chaos --shutdown-servers \
    > "$WORK_DIR/remote.out" 2>&1 &
  DRIVER_PID=$!
  while kill -0 "$DRIVER_PID" 2>/dev/null; do
    markers="$(grep -c '^CHAOS_WINDOW ' "$WORK_DIR/remote.out" 2>/dev/null \
               || true)"
    if [[ "${markers:-0}" -gt "$KILLS" ]]; then
      victim=$((KILLS % SERVERS))
      KILLS=$((KILLS + 1))
      port="${PORTS[$victim]}"
      echo "chaos: kill -9 server $victim (port $port)"
      kill -9 "${SERVER_PIDS[$victim]}" 2>/dev/null || true
      wait "${SERVER_PIDS[$victim]}" 2>/dev/null || true
      log="$WORK_DIR/server$victim.restart$KILLS.log"
      "$SERVER_BIN" --port "$port" > "$log" &
      SERVER_PIDS[$victim]=$!
      for _ in $(seq 1 100); do
        grep -q "^RIPPLE_NET_SERVER LISTENING $port\$" "$log" 2>/dev/null \
          && break
        sleep 0.05
      done
      if ! grep -q "^RIPPLE_NET_SERVER LISTENING $port\$" "$log"; then
        echo "error: server $victim never came back on port $port" >&2
        cat "$log" >&2
        kill "$DRIVER_PID" 2>/dev/null || true
        exit 1
      fi
      echo "chaos: restarted server $victim on port $port"
    fi
    sleep 0.1
  done
  if ! wait "$DRIVER_PID"; then
    echo "error: chaos driver run failed" >&2
    cat "$WORK_DIR/remote.out" >&2
    exit 1
  fi
  cat "$WORK_DIR/remote.out"
else
  RIPPLE_STORE=remote RIPPLE_REMOTE_ENDPOINTS="$ENDPOINTS" \
    "$DRIVER_BIN" $SMOKE --shutdown-servers | tee "$WORK_DIR/remote.out"
fi

# kShutdown asks each server to stop; give them a moment, then cleanup()'s
# kill is a no-op for processes that already exited.
for pid in "${SERVER_PIDS[@]}"; do
  for _ in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
done

# --- Compare digests. ----------------------------------------------------
status=0
for metric in PAGERANK_DIGEST SSSP_DIGEST SUMMA_DIGEST; do
  base="$(awk -v m="$metric" '$1 == m {print $2}' "$WORK_DIR/baseline.out")"
  remote="$(awk -v m="$metric" '$1 == m {print $2}' "$WORK_DIR/remote.out")"
  if [[ -z "$base" || -z "$remote" || "$base" != "$remote" ]]; then
    echo "MISMATCH $metric: baseline=$base remote=$remote"
    status=1
  else
    echo "MATCH    $metric: $base"
  fi
done
if ! grep -q '^DRIVER_OK$' "$WORK_DIR/remote.out"; then
  echo "MISSING DRIVER_OK in remote run"
  status=1
fi

if [[ -n "$CHAOS" ]]; then
  # Every kill must have been OBSERVED (epoch change), every observed
  # restart reseeded, and every lost state recovered from checkpoint —
  # anything else means the digests matched by luck.
  epochs="$(awk '$1 == "FAILOVER_EPOCH_CHANGES" {print $2}' \
            "$WORK_DIR/remote.out")"
  recoveries="$(awk '$1 == "FAILOVER_RECOVERIES" {print $2}' \
                "$WORK_DIR/remote.out")"
  if [[ "${epochs:-0}" -ne "$KILLS" ]]; then
    echo "CHAOS: expected $KILLS epoch changes, saw ${epochs:-none}"
    status=1
  fi
  if [[ "${recoveries:-0}" -lt "$KILLS" ]]; then
    echo "CHAOS: expected >= $KILLS recoveries, saw ${recoveries:-none}"
    status=1
  fi
  if ! grep -q '^FAILOVER_LEDGER CLOSED$' "$WORK_DIR/remote.out"; then
    echo "CHAOS: failover ledger did not close"
    status=1
  fi
  if [[ "$status" -eq 0 ]]; then
    echo "CHAOS OK ($KILLS kill(s), $KILLS recovery(ies), ledger closed)"
  fi
fi

if [[ "$status" -eq 0 ]]; then
  echo "BENCH_MULTIPROC OK ($SERVERS server(s))"
else
  echo "BENCH_MULTIPROC FAILED"
fi
exit "$status"
